(** End-to-end chaos drills for the fault-tolerance contracts.

    Everything here is seeded and deterministic in its injection
    decisions (see {!Resilience.Chaos}): the same seed fires the same
    faults at the same sites regardless of worker count, so the drills
    run identically in the test-suite and the CI chaos leg. *)

(** {1 Pool storm} *)

type storm_result = {
  storms : int;  (** chaos batches submitted to the pool *)
  propagated : int;
      (** storms whose injected fault re-raised at the submitting caller *)
  injected : int;  (** faults the injector fired, all kinds *)
  usable : bool;
      (** every post-storm verification batch computed correct results *)
}

val pool_storm :
  ?rounds:int -> jobs:int -> tasks:int -> seed:int -> unit -> storm_result
(** [pool_storm ~jobs ~tasks ~seed ()] runs [rounds] (default 4) batches
    of [tasks] tasks on a fresh [jobs]-worker pool, each task raising,
    sleeping, or exhausting per the seeded chaos decision, and after
    every storm runs a clean batch that must produce correct results.
    A correct pool propagates each storm's first fault to the caller
    without deadlocking or poisoning the workers: the caller checks
    [propagated = storms] (when the rate guarantees a fault per batch),
    [usable], and that the pool shut down cleanly (implicit — this
    function returning at all). *)

(** {1 Chaos-wrapped fuzzing} *)

val fuzz_storm :
  ?rate:float ->
  ?run_timeout:float ->
  seed:int ->
  budget:int ->
  unit ->
  Report.t * Resilience.Chaos.t
(** [fuzz_storm ~seed ~budget ()] runs the differential fuzzer with
    fault injection at rate [rate] (default 0.25) wrapping every run and
    oracle stage.  Returns the report and the injector for
    {!verify_accounting}. *)

val verify_accounting :
  Resilience.Chaos.t -> Report.t -> (int, string) result
(** [verify_accounting chaos report] cross-checks the injector's fault
    counter against the report's merged chaos counts.  [Ok n] when every
    one of the [n] reported faults is accounted for ([n] = injector
    total on a complete report); [Error msg] on a mismatch.  Reports
    stopped early discard outcomes past the stop point, so their counts
    legitimately undercount: accounting is then unverifiable and [Ok]
    carries the merged count as-is. *)

(** {1 Degradation sweep} *)

type sweep_row = {
  bench : string;
  outcome : string;  (** {!Resilience.Outcome.label}: ok/degraded/failed *)
  equivalent : bool;  (** the mapped (possibly degraded) circuit verified *)
}

val degradation_sweep : ?max_tuples:int -> ?vectors:int -> unit -> sweep_row list
(** [degradation_sweep ()] maps every suite benchmark under a tiny tuple
    budget (default 500) with the [`Degrade] policy and
    simulation-verifies each resulting circuit against its source.  The
    acceptance bar: no row is ["failed"], every row is [equivalent]. *)

(** {1 Daemon storm} *)

type daemon_storm_result = {
  frames : int;  (** frames sent that expect a response (hostile + legit) *)
  aborted : int;  (** mid-frame disconnects (no response expected) *)
  d_ok : int;  (** responses per status, as observed by the clients *)
  d_degraded : int;
  d_failed : int;
  d_rejected : int;
  d_errors : int;
  ledger : (string * int) list;  (** the daemon's closing [stats] ledger *)
  ledger_ok : bool;
      (** [requests = ok + degraded + failed + rejected] in the ledger *)
  alive : bool;  (** the daemon still answers [ping] after the storm *)
}

val daemon_storm :
  ?addr:Service.Protocol.addr ->
  ?workers:int ->
  ?rounds:int ->
  seed:int ->
  unit ->
  daemon_storm_result
(** [daemon_storm ~seed ()] storms a soimapd daemon with [workers]
    (default 4) concurrent hostile clients, each performing [rounds]
    (default 12) seeded actions: malformed frames, requests with invalid
    budget limits, oversized payloads, mid-frame disconnects,
    budget-tripping cones under both exhaustion policies, unparsable
    payloads and legitimate maps — one connection per action, so the
    accept path is churned too.

    Without [addr], a daemon is started in-process on a private Unix
    socket with a deliberately tight config (queue 8, 64 KiB frames)
    and drained at the end; with [addr] (the CI soak leg), an external
    daemon is stormed over the wire only.  The acceptance bar: every
    expected response arrived and carried a known status
    ([frames = d_ok + d_degraded + d_failed + d_rejected + d_errors]),
    [ledger_ok], and [alive]. *)
