open Mapper

type entry = {
  name : string;
  what : string;
  render : unit -> string;
}

(* The paper's Figure 3 network: f = (a*b) + (c*d), mapped with
   W_max = H_max = 4 exactly as in examples/paper_example.ml. *)
let fig3_net () =
  let b = Logic.Builder.create ~name:"fig3" () in
  let a = Logic.Builder.input b "a" and b' = Logic.Builder.input b "b" in
  let c = Logic.Builder.input b "c" and d = Logic.Builder.input b "d" in
  Logic.Builder.output b "f"
    (Logic.Builder.or2 b
       (Logic.Builder.and2 b a b')
       (Logic.Builder.and2 b c d));
  Logic.Builder.network b

let run_flow ?w_max ?h_max flow net =
  let r = Algorithms.run ?w_max ?h_max flow net in
  Domino.Circuit.dump r.Algorithms.circuit

let flow_entry flow tag =
  {
    name = Printf.sprintf "flow_%s_cm150" tag;
    what =
      Printf.sprintf "%s on cm150 (16:1 mux), paper defaults"
        (Algorithms.flow_name flow);
    render = (fun () -> run_flow flow (Gen.Suite.build_exn "cm150"));
  }

let suite_entry name =
  {
    name;
    what = Printf.sprintf "SOI_Domino_Map on suite benchmark %s" name;
    render =
      (fun () -> run_flow Algorithms.Soi_domino_map (Gen.Suite.build_exn name));
  }

(* Suite benchmarks are looked up in [Suite.all] and [Suite.extras]. *)
let build_any name =
  match Gen.Suite.find name with
  | Some e -> e.Gen.Suite.build ()
  | None -> (
      match List.find_opt (fun e -> e.Gen.Suite.name = name) Gen.Suite.extras with
      | Some e -> e.Gen.Suite.build ()
      | None -> raise Not_found)

let extra_entry name =
  {
    name;
    what = Printf.sprintf "SOI_Domino_Map on generated circuit %s" name;
    render = (fun () -> run_flow Algorithms.Soi_domino_map (build_any name));
  }

let corpus =
  [
    {
      name = "fig3";
      what = "paper Figure 3: (a*b)+(c*d) under W_max=H_max=4";
      render =
        (fun () ->
          run_flow ~w_max:4 ~h_max:4 Algorithms.Soi_domino_map (fig3_net ()));
    };
    flow_entry Algorithms.Domino_map "domino";
    flow_entry Algorithms.Rs_map "rs";
    flow_entry Algorithms.Soi_domino_map "soi";
    suite_entry "z4ml";
    suite_entry "cordic";
    suite_entry "f51m";
    suite_entry "count";
    suite_entry "9symml";
    suite_entry "c432";
    suite_entry "c880";
    suite_entry "c1908";
    suite_entry "frg1";
    extra_entry "cla16";
    extra_entry "gray8";
    extra_entry "lfsr16";
    extra_entry "dec5";
  ]

let find name = List.find_opt (fun e -> e.name = name) corpus

let filename e = e.name ^ ".txt"

let update_command = "dune exec bin/golden.exe -- update test/golden"
