open Mapper

type entry = {
  name : string;
  what : string;
  render : unit -> string;
}

let run_flow ?w_max ?h_max flow net =
  let r = Algorithms.run ?w_max ?h_max flow net in
  Domino.Circuit.dump r.Algorithms.circuit

let flow_entry flow tag =
  {
    name = Printf.sprintf "flow_%s_cm150" tag;
    what =
      Printf.sprintf "%s on cm150 (16:1 mux), paper defaults"
        (Algorithms.flow_name flow);
    render = (fun () -> run_flow flow (Gen.Suite.build_exn "cm150"));
  }

let suite_entry name =
  {
    name;
    what = Printf.sprintf "SOI_Domino_Map on suite benchmark %s" name;
    render =
      (fun () -> run_flow Algorithms.Soi_domino_map (Gen.Suite.build_exn name));
  }

(* Suite benchmarks are looked up in [Suite.all] and [Suite.extras]. *)
let build_any name =
  match Gen.Suite.find name with
  | Some e -> e.Gen.Suite.build ()
  | None -> (
      match List.find_opt (fun e -> e.Gen.Suite.name = name) Gen.Suite.extras with
      | Some e -> e.Gen.Suite.build ()
      | None -> raise Not_found)

let extra_entry name =
  {
    name;
    what = Printf.sprintf "SOI_Domino_Map on generated circuit %s" name;
    render = (fun () -> run_flow Algorithms.Soi_domino_map (build_any name));
  }

(* Exact-optimality certification pins.  The render is [Opt.Certify]'s
   status-per-cone text (no expansion counts), so the pin captures the
   proved/gap/bounded/skipped verdicts under default budgets — any DP or
   backend change that moves a verdict shows up as a golden diff. *)
let certify_entry ?(w_max = 5) ?(h_max = 8) ~bench flow tag =
  {
    name = Printf.sprintf "certify_%s" tag;
    what =
      Printf.sprintf "exact-optimality certificates: %s on %s (W=%d H=%d)"
        (Algorithms.flow_name flow) bench w_max h_max;
    render =
      (fun () ->
        let r = Algorithms.run ~w_max ~h_max flow (build_any bench) in
        let options =
          Algorithms.options_of ~cost:Mapper.Cost.area ~w_max ~h_max
            ~both_orders:true ~grounded_at_foot:true ~pareto_width:1 flow
        in
        Opt.Certify.render (Opt.Certify.certify ~options r.Algorithms.unate));
  }

(* Rewrite-portfolio pins: the flow under [--rewrite] on benchmarks
   where the front end's restructurings beat the original mapping.  The
   header line pins the portfolio's accounting (which rule won, at which
   site, and both costs), the dump pins the rewritten circuit itself —
   a rule-set or pricing change shows up as a golden diff. *)
let rewrite_entry ~bench tag =
  {
    name = Printf.sprintf "rewrite_%s" tag;
    what =
      Printf.sprintf "SOI_Domino_Map with --rewrite=8 on %s (portfolio win)"
        bench;
    render =
      (fun () ->
        let r =
          Algorithms.run ~rewrite:8 Algorithms.Soi_domino_map (build_any bench)
        in
        let header =
          match r.Algorithms.rewrite with
          | None -> "rewrite: off\n"
          | Some i ->
              Printf.sprintf "rewrite: variants=%d tried=%d chosen=%s \
                              cost=%d->%d\n"
                i.Restructure.generated i.Restructure.tried
                (match i.Restructure.chosen_rule with
                | None -> "original"
                | Some rule ->
                    Printf.sprintf "%s@n%d" rule i.Restructure.chosen_site)
                i.Restructure.original_cost i.Restructure.cost
        in
        header ^ Domino.Circuit.dump r.Algorithms.circuit);
  }

let corpus =
  [
    {
      name = "fig3";
      what = "paper Figure 3: (a*b)+(c*d) under W_max=H_max=4";
      render =
        (fun () ->
          run_flow ~w_max:4 ~h_max:4 Algorithms.Soi_domino_map
            (build_any "fig3"));
    };
    certify_entry ~w_max:4 ~h_max:4 ~bench:"fig3" Algorithms.Soi_domino_map
      "fig3";
    certify_entry ~bench:"z4ml" Algorithms.Soi_domino_map "z4ml_soi";
    certify_entry ~bench:"cordic" Algorithms.Domino_map "cordic_bulk";
    flow_entry Algorithms.Domino_map "domino";
    flow_entry Algorithms.Rs_map "rs";
    flow_entry Algorithms.Soi_domino_map "soi";
    suite_entry "z4ml";
    suite_entry "cordic";
    suite_entry "f51m";
    suite_entry "count";
    suite_entry "9symml";
    suite_entry "c432";
    suite_entry "c880";
    suite_entry "c1908";
    suite_entry "frg1";
    rewrite_entry ~bench:"f51m" "f51m";
    rewrite_entry ~bench:"count" "count";
    extra_entry "cla16";
    extra_entry "gray8";
    extra_entry "lfsr16";
    extra_entry "dec5";
  ]

let find name = List.find_opt (fun e -> e.name = name) corpus

let filename e = e.name ^ ".txt"

let update_command = "dune exec bin/golden.exe -- update test/golden"
