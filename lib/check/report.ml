open Unate

(* Per-run statistics and JSON emission for the differential fuzzer.  The
   JSON is hand-assembled: the report schema is flat and small, and the
   repo deliberately avoids external dependencies. *)

type counterexample = {
  run : int;            (* 1-based index of the failing run *)
  net_seed : int;       (* Random_logic seed that rebuilds the network *)
  net_inputs : int;
  net_gates : int;
  net_outputs : int;
  oracle : string;      (* which oracle tripped: structure/bdd/eval/pbe/crash *)
  detail : string;
  cex_input : string option;   (* failing input assignment, LSB-first bits *)
  cex_output : string option;
  config : Gen_config.t;
  shrunk_nodes : int;
  shrunk_outputs : int;
  shrunk_config : Gen_config.t;
  shrunk_dump : string;        (* textual unate network, replayable by hand *)
  shrink_checks : int;
}

type timeout_run = {
  t_run : int;              (* 1-based absolute run index *)
  t_net_seed : int option;  (* generator seed, when generation completed *)
  t_reason : string;        (* which budget tripped, e.g. deadline(0.5s) *)
}

type slow_run = {
  s_run : int;        (* 1-based absolute run index *)
  s_seconds : float;
}

(* Per-run wall-clock accounting.  Machine- and load-dependent by
   nature, so it lives in an optional field of its own: deterministic
   report comparisons strip it ({!strip_timing}, the fuzz CLI's
   [--no-timing]). *)
type timing = {
  runs_timed : int;   (* merged runs the totals cover *)
  total_s : float;    (* summed per-run wall clock *)
  max_s : float;      (* slowest single run *)
  slow : slow_run list;  (* runs at or above the slow-run threshold *)
}

(* One proven DP suboptimality from the exact oracle: the cone, the two
   costs, and everything needed to rebuild the run that exposed it. *)
type opt_gap = {
  g_run : int;          (* 1-based run index *)
  g_net_seed : int;     (* Random_logic seed that rebuilds the network *)
  g_root : int;         (* unate node id of the cone's boundary *)
  g_output : string option;  (* a primary output it drives, if any *)
  g_dp : int;           (* the DP's cost key for the cone *)
  g_exact : int;        (* the proven optimum (g_exact < g_dp) *)
  g_config : Gen_config.t;
}

(* Aggregated fourth-oracle (exact-optimality) verdicts.  Every sampled
   cone lands in exactly one counter — proved, gap, bounded (budget
   exhausted with an honest interval) or skipped (size cap) — and
   trivial outputs are tallied too, so nothing is dropped silently. *)
type optimality = {
  o_cones : int;
  o_proved : int;
  o_gaps : int;
  o_bounded : int;
  o_skipped : int;
  o_trivial : int;       (* literal/constant outputs: nothing to map *)
  o_expansions : int;    (* total exact-search work, deterministic *)
  o_gap_list : opt_gap list;  (* first gaps in run order (capped) *)
}

let no_optimality =
  {
    o_cones = 0;
    o_proved = 0;
    o_gaps = 0;
    o_bounded = 0;
    o_skipped = 0;
    o_trivial = 0;
    o_expansions = 0;
    o_gap_list = [];
  }

(* Aggregated incremental-remap oracle verdicts.  Every passing run
   applies a seeded local edit ({!Edit}) and cross-checks a warm
   {!Mapper.Engine.remap} against a cold full map of the edited network,
   byte-comparing the circuit dumps.  Probe counts and fingerprint
   verdicts are pure functions of (params, run index), so the block is
   bit-identical at any worker count. *)
type remap = {
  r_probes : int;      (* passing runs that ran the warm/cold cross-check *)
  r_dirty : int;       (* cones fingerprinted dirty, summed over probes *)
  r_clean : int;       (* cones fingerprinted clean, summed over probes *)
  r_hits : int;        (* warm memo hits during the remaps *)
  r_misses : int;      (* warm memo misses during the remaps *)
  r_mismatches : int;  (* probes where warm and cold circuits differed *)
}

let no_remap =
  {
    r_probes = 0;
    r_dirty = 0;
    r_clean = 0;
    r_hits = 0;
    r_misses = 0;
    r_mismatches = 0;
  }

type chaos_counts = {
  raises : int;    (* injected exceptions (the run is aborted, counted) *)
  delays : int;    (* injected sleeps (the run completes normally) *)
  exhausts : int;  (* injected budget exhaustions (recorded as timeouts) *)
}

let no_chaos = { raises = 0; delays = 0; exhausts = 0 }

type t = {
  seed : int;
  budget : int;
  runs : int;               (* runs actually executed (≤ budget) *)
  skipped : int;            (* generation attempts that produced no usable net *)
  eval_vectors : int;       (* total vectors through the bit-parallel oracle *)
  sim_cycles : int;         (* total cycles through the PBE simulator *)
  bdd_exact_runs : int;     (* runs where the BDD oracle completed exactly *)
  bdd_sampled_vectors : int;    (* vectors drawn by the sampled-equivalence
                                   fallback across all non-exact runs *)
  stripped_probes : int;    (* negative-oracle probes attempted *)
  stripped_event_probes : int;  (* probes where stripping produced PBE events *)
  timeouts : timeout_run list;  (* runs stopped by the per-run deadline *)
  timing : timing option;   (* wall-clock per-run durations; None when
                               stripped for deterministic comparison *)
  chaos : chaos_counts;     (* injected faults observed, by kind *)
  optimality : optimality option;  (* fourth-oracle verdicts; None when
                                      the exact oracle was not enabled *)
  remap : remap option;     (* incremental-remap oracle verdicts; None when
                               the remap leg was not enabled *)
  complete : bool;          (* false when the loop stopped early (failure or
                               generator exhaustion) and later outcomes were
                               discarded — accounting checks must skip *)
  counterexample : counterexample option;
}

let strip_timing r = { r with timing = None }

(* ---------------- textual network dump ---------------- *)

let fin_to_string u = function
  | Unetwork.F_const b -> if b then "1" else "0"
  | Unetwork.F_node i -> Printf.sprintf "n%d" i
  | Unetwork.F_lit { input; positive } ->
      Printf.sprintf "%s%s"
        (if positive then "" else "~")
        (Unetwork.inputs u).(input)

let dump_unetwork u =
  let b = Buffer.create 256 in
  Buffer.add_string b
    ("inputs " ^ String.concat " " (Array.to_list (Unetwork.inputs u)) ^ "\n");
  for i = 0 to Unetwork.node_count u - 1 do
    let nd = Unetwork.node u i in
    Buffer.add_string b
      (Printf.sprintf "n%d = %s %s %s\n" i
         (match nd.Unetwork.kind with Unetwork.U_and -> "and" | Unetwork.U_or -> "or")
         (fin_to_string u nd.Unetwork.fanin0)
         (fin_to_string u nd.Unetwork.fanin1))
  done;
  Array.iter
    (fun (nm, f) ->
      Buffer.add_string b (Printf.sprintf "output %s = %s\n" nm (fin_to_string u f)))
    (Unetwork.outputs u);
  Buffer.contents b

let bits_of_input input =
  String.init (Array.length input) (fun i -> if input.(i) then '1' else '0')

(* ---------------- JSON ---------------- *)

let json_escape s =
  let b = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\t' -> Buffer.add_string b "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let json_str s = "\"" ^ json_escape s ^ "\""

let json_opt = function None -> "null" | Some s -> json_str s

let json_of_config (c : Gen_config.t) =
  let open Mapper in
  Printf.sprintf
    "{\"style\": %s, \"w_max\": %d, \"h_max\": %d, \"cost\": %s, \
     \"both_orders\": %b, \"grounded_at_foot\": %b, \"pareto_width\": %d, \
     \"rearrange\": %b, \"rewrite\": %d}"
    (json_str (Gen_config.style_name c.Gen_config.opts.Engine.style))
    c.Gen_config.opts.Engine.w_max c.Gen_config.opts.Engine.h_max
    (json_str c.Gen_config.opts.Engine.cost.Cost.name)
    c.Gen_config.opts.Engine.both_orders
    c.Gen_config.opts.Engine.grounded_at_foot
    c.Gen_config.opts.Engine.pareto_width c.Gen_config.rearrange
    c.Gen_config.rewrite

let json_of_counterexample cex =
  Printf.sprintf
    "{\"run\": %d, \"net_seed\": %d, \"net_inputs\": %d, \"net_gates\": %d, \
     \"net_outputs\": %d, \"oracle\": %s, \"detail\": %s, \"cex_input\": %s, \
     \"cex_output\": %s, \"config\": %s, \"shrunk_nodes\": %d, \
     \"shrunk_outputs\": %d, \"shrunk_config\": %s, \"shrink_checks\": %d, \
     \"shrunk_network\": %s}"
    cex.run cex.net_seed cex.net_inputs cex.net_gates cex.net_outputs
    (json_str cex.oracle) (json_str cex.detail) (json_opt cex.cex_input)
    (json_opt cex.cex_output)
    (json_of_config cex.config)
    cex.shrunk_nodes cex.shrunk_outputs
    (json_of_config cex.shrunk_config)
    cex.shrink_checks (json_str cex.shrunk_dump)

let json_of_opt_gap g =
  Printf.sprintf
    "{\"run\": %d, \"net_seed\": %d, \"cone\": %s, \"output\": %s, \
     \"dp_cost\": %d, \"exact_cost\": %d, \"config\": %s}"
    g.g_run g.g_net_seed
    (json_str (Printf.sprintf "n%d" g.g_root))
    (json_opt g.g_output) g.g_dp g.g_exact
    (json_of_config g.g_config)

let json_of_optimality o =
  Printf.sprintf
    "{\"cones\": %d, \"proved\": %d, \"gaps\": %d, \"bounded\": %d, \
     \"skipped\": %d, \"trivial_outputs\": %d, \"expansions\": %d, \
     \"gap_findings\": [%s]}"
    o.o_cones o.o_proved o.o_gaps o.o_bounded o.o_skipped o.o_trivial
    o.o_expansions
    (String.concat ", " (List.map json_of_opt_gap o.o_gap_list))

let json_of_remap m =
  Printf.sprintf
    "{\"probes\": %d, \"dirty_cones\": %d, \"clean_cones\": %d, \
     \"memo_hits\": %d, \"memo_misses\": %d, \"mismatches\": %d}"
    m.r_probes m.r_dirty m.r_clean m.r_hits m.r_misses m.r_mismatches

let json_of_timeout t =
  Printf.sprintf "{\"run\": %d, \"net_seed\": %s, \"reason\": %s}" t.t_run
    (match t.t_net_seed with None -> "null" | Some s -> string_of_int s)
    (json_str t.t_reason)

let json_of_slow s =
  Printf.sprintf "{\"run\": %d, \"seconds\": %.6f}" s.s_run s.s_seconds

let json_of_timing t =
  Printf.sprintf
    "{\"runs_timed\": %d, \"total_s\": %.6f, \"max_s\": %.6f, \"slow\": [%s]}"
    t.runs_timed t.total_s t.max_s
    (String.concat ", " (List.map json_of_slow t.slow))

let to_json r =
  Printf.sprintf
    "{\"seed\": %d, \"budget\": %d, \"runs\": %d, \"skipped\": %d, \
     \"eval_vectors\": %d, \"sim_cycles\": %d, \"bdd_exact_runs\": %d, \
     \"bdd_sampled_vectors\": %d, \
     \"stripped_probes\": %d, \"stripped_event_probes\": %d, \
     \"timeouts\": [%s], \
     \"timing\": %s, \
     \"chaos\": {\"raises\": %d, \"delays\": %d, \"exhausts\": %d}, \
     \"optimality\": %s, \
     \"remap\": %s, \
     \"complete\": %b, \
     \"counterexample\": %s}"
    r.seed r.budget r.runs r.skipped r.eval_vectors r.sim_cycles
    r.bdd_exact_runs r.bdd_sampled_vectors r.stripped_probes
    r.stripped_event_probes
    (String.concat ", " (List.map json_of_timeout r.timeouts))
    (match r.timing with None -> "null" | Some t -> json_of_timing t)
    r.chaos.raises r.chaos.delays r.chaos.exhausts
    (match r.optimality with
    | None -> "null"
    | Some o -> json_of_optimality o)
    (match r.remap with None -> "null" | Some m -> json_of_remap m)
    r.complete
    (match r.counterexample with
    | None -> "null"
    | Some cex -> json_of_counterexample cex)

(* The report with an {!Obs.Metrics} snapshot spliced into the top
   level; the fuzz CLI uses it when collection is enabled. *)
let to_json_with_metrics metrics r =
  let base = to_json r in
  let items =
    List.map (fun (n, v) -> Printf.sprintf "%s: %d" (json_str n) v) metrics
  in
  String.sub base 0 (String.length base - 1)
  ^ Printf.sprintf ", \"metrics\": {%s}}" (String.concat ", " items)

let pp_human fmt r =
  Format.fprintf fmt
    "fuzz: seed=%d budget=%d runs=%d skipped=%d@,\
    \  oracles: %d eval vectors, %d sim cycles, %d/%d runs BDD-exact@,\
    \  negative oracle: %d/%d stripped probes exhibited PBE@,"
    r.seed r.budget r.runs r.skipped r.eval_vectors r.sim_cycles
    r.bdd_exact_runs r.runs r.stripped_event_probes r.stripped_probes;
  if r.bdd_sampled_vectors > 0 then
    Format.fprintf fmt "  sampled-equivalence fallback: %d vectors@,"
      r.bdd_sampled_vectors;
  if r.timeouts <> [] then begin
    Format.fprintf fmt "  %d run(s) hit the per-run deadline:@,"
      (List.length r.timeouts);
    List.iter
      (fun t ->
        Format.fprintf fmt "    run %d (%s): net_seed=%s@," t.t_run t.t_reason
          (match t.t_net_seed with
          | None -> "unknown"
          | Some s -> string_of_int s))
      r.timeouts
  end;
  (match r.timing with
  | Some t when t.runs_timed > 0 ->
      Format.fprintf fmt "  timing: %.2fs total, %.3fs max over %d run(s)@,"
        t.total_s t.max_s t.runs_timed;
      List.iter
        (fun s ->
          Format.fprintf fmt "    slow run %d: %.3fs@," s.s_run s.s_seconds)
        t.slow
  | _ -> ());
  if r.chaos <> no_chaos then
    Format.fprintf fmt
      "  chaos: %d raises, %d delays, %d exhausts injected@,"
      r.chaos.raises r.chaos.delays r.chaos.exhausts;
  (match r.optimality with
  | None -> ()
  | Some o ->
      Format.fprintf fmt
        "  exact oracle: %d cones — %d proved, %d gaps, %d bounded, %d \
         skipped (%d trivial outputs, %d expansions)@,"
        o.o_cones o.o_proved o.o_gaps o.o_bounded o.o_skipped o.o_trivial
        o.o_expansions;
      List.iter
        (fun g ->
          Format.fprintf fmt
            "    GAP run %d net_seed=%d cone=n%d%s: dp=%d exact=%d under %s@,"
            g.g_run g.g_net_seed g.g_root
            (match g.g_output with None -> "" | Some o -> " (" ^ o ^ ")")
            g.g_dp g.g_exact
            (Gen_config.describe g.g_config))
        o.o_gap_list);
  (match r.remap with
  | None -> ()
  | Some m ->
      Format.fprintf fmt
        "  remap oracle: %d probes — %d dirty / %d clean cones, %d warm \
         hits, %d misses, %d mismatches@,"
        m.r_probes m.r_dirty m.r_clean m.r_hits m.r_misses m.r_mismatches);
  if not r.complete then
    Format.fprintf fmt "  (stopped early; later runs were not executed)@,";
  match r.counterexample with
  | None -> Format.fprintf fmt "  no counterexample found@,"
  | Some cex ->
      Format.fprintf fmt
        "  COUNTEREXAMPLE at run %d (oracle %s): %s@,\
        \  network: seed=%d inputs=%d gates=%d outputs=%d@,\
        \  config: %s@,\
        \  shrunk to %d nodes, %d outputs under %s (%d shrink checks)@,%s"
        cex.run cex.oracle cex.detail cex.net_seed cex.net_inputs cex.net_gates
        cex.net_outputs
        (Gen_config.describe cex.config)
        cex.shrunk_nodes cex.shrunk_outputs
        (Gen_config.describe cex.shrunk_config)
        cex.shrink_checks cex.shrunk_dump
