(* Seeded local edits for the incremental-remap legs.  See edit.mli. *)

open Unate

type plan =
  | Flip_kind of int
  | Rewire of { id : int; fanin0 : bool; fin : Unetwork.fin }

(* Everything derives from a private RNG stream over [(u, seed)], so an
   edit is reproducible from the report alone. *)
let plan ~seed u =
  let n = Unetwork.node_count u in
  if n = 0 then None
  else begin
    let rng = Logic.Rng.create seed in
    let id = Logic.Rng.int rng n in
    let inputs = Array.length (Unetwork.inputs u) in
    let random_fin () =
      (* Rewire to a lower-indexed node (keeping the topological-order
         invariant) or to a fresh input literal. *)
      if id > 0 && Logic.Rng.bool rng then
        Unetwork.F_node (Logic.Rng.int rng id)
      else
        Unetwork.F_lit
          {
            input = Logic.Rng.int rng inputs;
            positive = Logic.Rng.bool rng;
          }
    in
    match Logic.Rng.int rng 3 with
    | _ when inputs = 0 -> Some (Flip_kind id)
    | 0 -> Some (Flip_kind id)
    | 1 -> Some (Rewire { id; fanin0 = true; fin = random_fin () })
    | _ -> Some (Rewire { id; fanin0 = false; fin = random_fin () })
  end

let apply ~seed u =
  match plan ~seed u with
  | None -> u
  | Some p ->
      let n = Unetwork.node_count u in
      let nodes = Array.init n (Unetwork.node u) in
      (match p with
      | Flip_kind id ->
          let nd = nodes.(id) in
          nodes.(id) <-
            {
              nd with
              Unetwork.kind =
                (match nd.Unetwork.kind with
                | Unetwork.U_and -> Unetwork.U_or
                | Unetwork.U_or -> Unetwork.U_and);
            }
      | Rewire { id; fanin0; fin } ->
          let nd = nodes.(id) in
          nodes.(id) <-
            (if fanin0 then { nd with Unetwork.fanin0 = fin }
             else { nd with Unetwork.fanin1 = fin }));
      Unetwork.with_structure u ~nodes ~outputs:(Unetwork.outputs u)

let fin_string = function
  | Unetwork.F_node m -> Printf.sprintf "node %d" m
  | Unetwork.F_const b -> Printf.sprintf "const %b" b
  | Unetwork.F_lit { input; positive } ->
      Printf.sprintf "%sinput %d" (if positive then "" else "~") input

let describe ~seed u =
  match plan ~seed u with
  | None -> "no-op (empty network)"
  | Some (Flip_kind id) -> Printf.sprintf "flip-kind node %d" id
  | Some (Rewire { id; fanin0; fin }) ->
      Printf.sprintf "rewire node %d fanin%d -> %s" id
        (if fanin0 then 0 else 1)
        (fin_string fin)
