open Unate

(* Greedy delta-debugging of a failing (unate network, configuration)
   pair.  Structural steps delete work from the network — dropping
   primary outputs and bypassing nodes with one of their fanins — and
   every candidate is renormalised through the network round-trip, which
   constant-folds, hash-conses and sweeps dead logic.  Configuration
   steps move options toward the defaults.  A candidate is accepted only
   when the caller's [fails] predicate still holds (the fuzzer passes a
   predicate that also matches the original failure kind, so a crash
   cannot masquerade as a logic bug during shrinking). *)

type result = {
  u : Unetwork.t;
  cfg : Gen_config.t;
  checks : int;  (* oracle invocations spent shrinking *)
}

let nodes_of u = Array.init (Unetwork.node_count u) (Unetwork.node u)

(* Renormalise a raw node/output edit back into a well-formed network:
   constants fold, duplicates hash-cons, dead nodes sweep. *)
let rebuild u nodes outs = Unetwork.with_structure u ~nodes ~outputs:outs

let bypass nodes outs ~target ~repl =
  let fix f = if f = Unetwork.F_node target then repl else f in
  let nodes =
    Array.map
      (fun nd ->
        { nd with Unetwork.fanin0 = fix nd.Unetwork.fanin0;
          fanin1 = fix nd.Unetwork.fanin1 })
      nodes
  in
  let outs = Array.map (fun (nm, f) -> (nm, fix f)) outs in
  (nodes, outs)

(* Any network with at least one output is mappable: the engine ties
   constant outputs to the rail ([Pdn.S_const]) and feeds literals
   through, so constant-folded candidates are legitimate counterexample
   material rather than rejects. *)
let valid u = Array.length (Unetwork.outputs u) > 0

let structural_candidates u cfg =
  let nodes = nodes_of u and outs = Unetwork.outputs u in
  let restrictions =
    if Array.length outs <= 1 then []
    else
      List.init (Array.length outs) (fun k ->
          (rebuild u nodes [| outs.(k) |], cfg))
  in
  let bypasses =
    List.concat
      (List.init (Array.length nodes) (fun back ->
           let i = Array.length nodes - 1 - back in
           let nd = nodes.(i) in
           List.map
             (fun repl ->
               let nodes', outs' = bypass nodes outs ~target:i ~repl in
               (rebuild u nodes' outs', cfg))
             [ nd.Unetwork.fanin0; nd.Unetwork.fanin1 ]))
  in
  restrictions @ bypasses

let config_candidates u cfg =
  List.map (fun cfg' -> (u, cfg')) (Gen_config.simpler cfg)

(* Lexicographic measure: nodes, then outputs, then option complexity.
   Every accepted step strictly decreases it, so the loop terminates. *)
let score u cfg =
  (Unetwork.node_count u * 100_000)
  + (Array.length (Unetwork.outputs u) * 1_000)
  + Gen_config.complexity cfg

let minimize ?(max_checks = 2_000) ~fails u0 cfg0 =
  let checks = ref 0 in
  let still_fails u cfg =
    !checks < max_checks
    && begin
         incr checks;
         fails u cfg
       end
  in
  let current = ref (u0, cfg0) in
  let improved = ref true in
  while !improved && !checks < max_checks do
    improved := false;
    let u, cfg = !current in
    let sc = score u cfg in
    (try
       List.iter
         (fun (u', cfg') ->
           if valid u' && score u' cfg' < sc && still_fails u' cfg' then begin
             current := (u', cfg');
             improved := true;
             raise Exit
           end)
         (structural_candidates u cfg @ config_candidates u cfg)
     with Exit -> ())
  done;
  let u, cfg = !current in
  { u; cfg; checks = !checks }
