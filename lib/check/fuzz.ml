open Unate

(* The differential fuzz loop: generate a random multi-level network,
   unate-decompose it, sample a mapper configuration, and drive the
   mapped circuit through all three oracles.  The first failure is
   shrunk to a minimal counterexample and reported.

   Every run draws all of its randomness from its own generator,
   [Rng.stream seed i], so run [i] is a pure function of [(params, i)].
   That makes the budget embarrassingly parallel: runs are executed in
   chunks on the default {!Parallel.Pool} and merged back in run order,
   and the report — runs, skips, oracle totals, the counterexample and
   its shrink — is bit-identical at any worker count.  Everything is
   deterministic in [params.seed].

   Two opt-in knobs bend that contract deliberately:
   [run_timeout] imposes a per-run wall-clock deadline, so a pathological
   run is recorded as a timeout in the report (with the seed that
   rebuilds it) instead of wedging the pool — by nature wall-clock
   verdicts can differ between machines, though not between worker
   counts on the same hardware unless the load differs.  [chaos] injects
   seeded faults (raise, delay, budget exhaustion) at the run and oracle
   stage boundaries; decisions are a pure hash of (chaos seed, site, run
   index), so injected faults are the same at any [-j]. *)

(* Fourth-oracle (exact-optimality) settings.  Both caps are counted in
   deterministic units — cone interior nodes and search expansions —
   never wall-clock, so the optimality block is [-j]-invariant. *)
type exact_params = {
  ex_max_size : int;        (* certify cones up to this interior size *)
  ex_max_expansions : int;  (* per-cone exact-search budget *)
}

let default_exact =
  {
    ex_max_size = Opt.Certify.default_max_size;
    ex_max_expansions = Opt.Certify.default_max_expansions;
  }

type params = {
  seed : int;
  budget : int;       (* number of (network, configuration) runs *)
  max_nodes : int;    (* reject generated unate networks larger than this *)
  eval_vectors : int; (* per-run budget of the bit-parallel oracle *)
  sim_pairs : int;    (* per-run hold/strike pairs for the PBE oracle *)
  shrink_checks : int;
  exact : exact_params option;  (* exact-optimality oracle (default off) *)
  rewrite : int;  (* rewrite-portfolio cap applied to every run's config
                     (0 = front end off); the exact oracle then
                     certifies the network the portfolio chose *)
  remap : bool;   (* incremental-remap oracle: every passing run applies
                     a seeded local edit and cross-checks a warm
                     [Engine.remap] against a cold full map, byte for
                     byte (default off) *)
  run_timeout : float option;  (* per-run wall-clock deadline, seconds *)
  slow_run_s : float; (* runs at or above this duration are listed
                         individually in the report's timing block *)
  chaos : Resilience.Chaos.t;  (* seeded fault injection (default off) *)
  log : string -> unit;
  on_progress : Report.t -> unit;
      (* called with a partial report after each merged chunk; the
         SIGINT handlers use it to flush what was already measured *)
}

let default_params =
  {
    seed = 1;
    budget = 100;
    max_nodes = 400;
    eval_vectors = 1024;
    sim_pairs = 16;
    shrink_checks = 2_000;
    exact = None;
    rewrite = 0;
    remap = false;
    run_timeout = None;
    slow_run_s = 1.0;
    chaos = Resilience.Chaos.disabled;
    log = ignore;
    on_progress = ignore;
  }

(* Fuzzer observability.  The per-run latency histogram is wall-clock
   and chunk-dependent (discarded-past-stop runs still execute and
   observe), so it is registered unstable; the shrink-check counter is
   driven by the serial, deterministic shrink phase and stays stable. *)
let h_run_ms =
  Obs.Metrics.histogram ~stable:false
    ~buckets:[| 1; 2; 5; 10; 20; 50; 100; 200; 500; 1000; 2000; 5000 |]
    "fuzz.run_ms"

let m_shrink_checks = Obs.Metrics.counter "fuzz.shrink_checks"

type net_shape = {
  ns_seed : int;
  ns_inputs : int;
  ns_gates : int;
  ns_outputs : int;
}

(* Fully-folded networks (zero nodes, outputs reduced to literals or
   constants) are mappable too — the engine ties constant outputs to the
   rail — so the only rejects are oversized networks. *)
let usable u max_nodes = Unetwork.node_count u <= max_nodes && Shrink.valid u

(* Draw generator parameters until decomposition yields a mappable
   network.  Returns the attempts burned so the report can count them. *)
let gen_unetwork rng max_nodes =
  let rec attempt burned tries =
    if tries = 0 then (None, burned)
    else begin
      let open Logic in
      let shape =
        {
          ns_seed = Rng.int rng 1_000_000;
          ns_inputs = Rng.int_in rng 4 9;
          ns_gates = Rng.int_in rng 6 40;
          ns_outputs = Rng.int_in rng 1 4;
        }
      in
      let net =
        Gen.Random_logic.generate
          (Gen.Random_logic.default
             ~name:(Printf.sprintf "fuzz%d" shape.ns_seed)
             ~inputs:shape.ns_inputs ~gates:shape.ns_gates
             ~outputs:shape.ns_outputs ~seed:shape.ns_seed)
      in
      let u = Mapper.Algorithms.prepare net in
      if usable u max_nodes then (Some (u, shape), burned)
      else attempt (burned + 1) (tries - 1)
    end
  in
  attempt 0 8

(* Everything one run produces.  Computed without touching shared state
   so runs can execute on any domain; outcomes are merged in run order,
   which restores the serial semantics exactly. *)
type outcome =
  | O_exhausted of int  (* generator gave up; burned attempts *)
  | O_pass of {
      burned : int;
      stats : Oracle.stats;
      (* material for the capped negative-oracle probe, which stays
         serial in the merge phase so its run-order budget of 32 probes
         is independent of the worker count *)
      circuit : Domino.Circuit.t;
      oracle_seed : int;
      shape : net_shape;
      config : Gen_config.t;
      (* fourth-oracle verdicts for this run's cones, when enabled *)
      optimality : Opt.Certify.summary option;
      (* incremental-remap probe verdict for this run, when enabled *)
      remap : Report.remap option;
    }
  | O_fail of {
      burned : int;
      shape : net_shape;
      u : Unetwork.t;
      cfg : Gen_config.t;
      oracle_seed : int;
      failure : Oracle.failure;
    }
  | O_timeout of {
      burned : int;
      net_seed : int option;  (* known once generation completed *)
      reason : string;
    }
  | O_aborted of { site : string }  (* run killed by an injected raise *)

(* One run's outcome plus every chaos fault that fired during it, in
   firing order, so the merge phase can account for all of them —
   delays included — without any order-dependent global counter. *)
type run_result = {
  faults : (string * Resilience.Chaos.fault) list;  (* (site, fault) *)
  seconds : float;  (* wall-clock duration of this run *)
  outcome : outcome;
}

(* Run [i] of the budget: a pure function of [(params, i)] — modulo the
   wall clock when [run_timeout] is set, and the sleep of an injected
   delay. *)
let exec_run params i =
  let t0 = Obs.Clock.now_ns () in
  let faults = ref [] in
  let note site f = faults := (site, f) :: !faults in
  let inject = Resilience.Chaos.point_for params.chaos ~note ~salt:i () in
  let budget =
    match params.run_timeout with
    | None -> Resilience.Budget.unlimited
    | Some s -> Resilience.Budget.make ~timeout:s ()
  in
  let outcome =
    Obs.Trace.with_span ~cat:"fuzz" "fuzz.run"
      ~args:(fun () -> [ ("run", string_of_int (i + 1)) ])
    @@ fun () ->
    try
      inject ~site:"fuzz.run";
      let rng = Logic.Rng.stream (params.seed lxor 0xF022) i in
      let candidate, burned = gen_unetwork rng params.max_nodes in
      match candidate with
      | None -> O_exhausted burned
      | Some (u, shape) -> (
          let cfg =
            { (Gen_config.sample rng) with Gen_config.rewrite = params.rewrite }
          in
          let oracle_seed = Logic.Rng.int rng 0x3FFFFFFF in
          (* Per-run memo table: the run stays a pure function of
             [(params, i)], so reports are [-j]-invariant; the rebuild
             of a passing circuit below is then a pure cache hit. *)
          let memo = Mapper.Memo.create ~shards:1 () in
          match
            Oracle.check ~eval_vectors:params.eval_vectors
              ~sim_pairs:params.sim_pairs ~seed:oracle_seed ~budget ~inject
              ~memo u cfg
          with
          | Oracle.Pass stats ->
              let optimality =
                match params.exact with
                | None -> None
                | Some ex ->
                    inject ~site:"fuzz.exact";
                    (* Certify the network the DP actually mapped: the
                       portfolio's winner under --rewrite, [u] itself
                       otherwise.  The salt keys the rerun into the
                       same memo entries the winner was priced with. *)
                    let target = Oracle.chosen_network ~budget ~memo u cfg in
                    let memo_salt =
                      if cfg.Gen_config.rewrite > 0 then
                        Mapper.Restructure.salt_of
                          ~limit:cfg.Gen_config.rewrite
                      else 0
                    in
                    Some
                      (Opt.Certify.certify ~max_size:ex.ex_max_size
                         ~max_expansions:ex.ex_max_expansions ~memo ~memo_salt
                         ~options:cfg.Gen_config.opts target)
              in
              let remap =
                if not params.remap then None
                else begin
                  inject ~site:"fuzz.remap";
                  (* Warm-vs-cold cross-check on a seeded local edit.
                     Everything — the edit, the fingerprint verdicts,
                     the two circuits — is a pure function of
                     [(params, i)], so the block stays [-j]-invariant.
                     The probe gets its own memo: the run's table
                     already holds this network's cones, which would
                     make the "cold" side warm. *)
                  let edit_seed = Logic.Rng.int rng 0x3FFFFFFF in
                  let u1 = Edit.apply ~seed:edit_seed u in
                  let opts = cfg.Gen_config.opts in
                  let probe_memo = Mapper.Memo.create ~shards:1 () in
                  let st, _ =
                    Mapper.Engine.remap_init ~budget ~memo:probe_memo opts u
                  in
                  let warm_c, _, info = Mapper.Engine.remap ~budget st u1 in
                  let cold_c, _ = Mapper.Engine.map ~budget opts u1 in
                  Some
                    {
                      Report.r_probes = 1;
                      r_dirty = info.Mapper.Engine.dirty_cones;
                      r_clean = info.Mapper.Engine.clean_cones;
                      r_hits = info.Mapper.Engine.memo_hits;
                      r_misses = info.Mapper.Engine.memo_misses;
                      r_mismatches =
                        (if
                           Domino.Circuit.dump warm_c
                           <> Domino.Circuit.dump cold_c
                         then 1
                         else 0);
                    }
                end
              in
              O_pass
                {
                  burned;
                  stats;
                  circuit = Oracle.build ~memo u cfg;
                  oracle_seed;
                  shape;
                  config = cfg;
                  optimality;
                  remap;
                }
          | Oracle.Fail failure ->
              O_fail { burned; shape; u; cfg; oracle_seed; failure }
          | exception Resilience.Budget.Exhausted reason ->
              O_timeout
                {
                  burned;
                  net_seed = Some shape.ns_seed;
                  reason = Resilience.Budget.reason_to_string reason;
                })
    with
    | Resilience.Budget.Exhausted reason ->
        O_timeout
          { burned = 0; net_seed = None;
            reason = Resilience.Budget.reason_to_string reason }
    | Resilience.Chaos.Injected (site, _) -> O_aborted { site }
  in
  let seconds = Obs.Clock.ns_to_s (Int64.sub (Obs.Clock.now_ns ()) t0) in
  Obs.Metrics.observe h_run_ms (int_of_float (seconds *. 1000.));
  { faults = List.rev !faults; seconds; outcome }

let run params =
  let pool = Parallel.Pool.default () in
  let runs = ref 0 and skipped = ref 0 in
  let eval_vectors = ref 0 and sim_cycles = ref 0 in
  let bdd_exact_runs = ref 0 and bdd_sampled_vectors = ref 0 in
  let stripped_probes = ref 0 and stripped_event_probes = ref 0 in
  let timeouts = ref [] in
  let total_s = ref 0. and max_s = ref 0. and runs_timed = ref 0 in
  let slow = ref [] in
  let chaos_raises = ref 0 and chaos_delays = ref 0 and chaos_exhausts = ref 0 in
  (* Fourth-oracle ledger.  Counts are exhaustive (every cone lands in
     exactly one bucket); the gap list is capped for report size, with
     [o_gaps] still carrying the full count. *)
  let max_gap_findings = 100 in
  let opt_cones = ref 0 and opt_proved = ref 0 and opt_gaps = ref 0 in
  let opt_bounded = ref 0 and opt_skipped = ref 0 and opt_trivial = ref 0 in
  let opt_expansions = ref 0 in
  let opt_gap_list = ref [] (* reversed; merged in run order *) in
  let merge_optimality ~run ~net_seed ~config (s : Opt.Certify.summary) =
    opt_cones := !opt_cones + s.Opt.Certify.cones;
    opt_proved := !opt_proved + s.Opt.Certify.proved;
    opt_gaps := !opt_gaps + s.Opt.Certify.gaps;
    opt_bounded := !opt_bounded + s.Opt.Certify.bounded;
    opt_skipped := !opt_skipped + s.Opt.Certify.skipped;
    opt_trivial := !opt_trivial + s.Opt.Certify.trivial_outputs;
    opt_expansions := !opt_expansions + s.Opt.Certify.expansions;
    List.iter
      (fun (c : Opt.Certify.cert) ->
        match c.Opt.Certify.status with
        | Opt.Certify.Gap { dp; exact }
          when List.length !opt_gap_list < max_gap_findings ->
            opt_gap_list :=
              {
                Report.g_run = run;
                g_net_seed = net_seed;
                g_root = c.Opt.Certify.root;
                g_output =
                  (match c.Opt.Certify.outputs with
                  | [] -> None
                  | o :: _ -> Some o);
                g_dp = dp;
                g_exact = exact;
                g_config = config;
              }
              :: !opt_gap_list
        | _ -> ())
      s.Opt.Certify.certs
  in
  (* Incremental-remap oracle ledger: per-probe verdicts summed in run
     order. *)
  let remap_acc = ref Report.no_remap in
  let merge_remap (m : Report.remap) =
    let a = !remap_acc in
    remap_acc :=
      {
        Report.r_probes = a.Report.r_probes + m.Report.r_probes;
        r_dirty = a.Report.r_dirty + m.Report.r_dirty;
        r_clean = a.Report.r_clean + m.Report.r_clean;
        r_hits = a.Report.r_hits + m.Report.r_hits;
        r_misses = a.Report.r_misses + m.Report.r_misses;
        r_mismatches = a.Report.r_mismatches + m.Report.r_mismatches;
      }
  in
  let first_failure = ref None in
  let stopped = ref false in
  let snapshot ~complete counterexample =
    {
      Report.seed = params.seed;
      budget = params.budget;
      runs = !runs;
      skipped = !skipped;
      eval_vectors = !eval_vectors;
      sim_cycles = !sim_cycles;
      bdd_exact_runs = !bdd_exact_runs;
      bdd_sampled_vectors = !bdd_sampled_vectors;
      stripped_probes = !stripped_probes;
      stripped_event_probes = !stripped_event_probes;
      timeouts = List.rev !timeouts;
      timing =
        Some
          {
            Report.runs_timed = !runs_timed;
            total_s = !total_s;
            max_s = !max_s;
            slow = List.rev !slow;
          };
      chaos =
        {
          Report.raises = !chaos_raises;
          delays = !chaos_delays;
          exhausts = !chaos_exhausts;
        };
      optimality =
        (match params.exact with
        | None -> None
        | Some _ ->
            Some
              {
                Report.o_cones = !opt_cones;
                o_proved = !opt_proved;
                o_gaps = !opt_gaps;
                o_bounded = !opt_bounded;
                o_skipped = !opt_skipped;
                o_trivial = !opt_trivial;
                o_expansions = !opt_expansions;
                o_gap_list = List.rev !opt_gap_list;
              });
      remap = (if params.remap then Some !remap_acc else None);
      complete;
      counterexample;
    }
  in
  (* Chunks bound how far past a failure (or generator exhaustion) we
     compute; outcomes past the stop point are discarded unmerged, so
     the report does not depend on the chunk size or worker count. *)
  let chunk_size = max 1 (4 * Parallel.Pool.jobs pool) in
  let base = ref 0 in
  while (not !stopped) && !base < params.budget do
    let n = min chunk_size (params.budget - !base) in
    let results =
      Parallel.Pool.map pool (exec_run params)
        (Array.init n (fun k -> !base + k))
    in
    Array.iteri
      (fun k { faults; seconds; outcome } ->
        if not !stopped then begin
          (* Timing follows the merge semantics: discarded-past-stop
             outcomes are not accounted, so the counts the timing block
             covers match the rest of the report. *)
          total_s := !total_s +. seconds;
          if seconds > !max_s then max_s := seconds;
          incr runs_timed;
          if seconds >= params.slow_run_s then
            slow :=
              { Report.s_run = !base + k + 1; s_seconds = seconds } :: !slow;
          List.iter
            (fun (_site, fault) ->
              match fault with
              | Resilience.Chaos.Raise -> incr chaos_raises
              | Resilience.Chaos.Delay -> incr chaos_delays
              | Resilience.Chaos.Exhaust -> incr chaos_exhausts)
            faults;
          match outcome with
          | O_exhausted burned ->
              (* generator gave up; report honest counts *)
              skipped := !skipped + burned;
              stopped := true
          | O_pass { burned; stats; circuit; oracle_seed; shape; config;
                     optimality; remap } ->
              skipped := !skipped + burned;
              incr runs;
              (match optimality with
              | None -> ()
              | Some s ->
                  merge_optimality ~run:!runs ~net_seed:shape.ns_seed ~config
                    s);
              (match remap with None -> () | Some m -> merge_remap m);
              eval_vectors := !eval_vectors + stats.Oracle.eval_vectors;
              sim_cycles := !sim_cycles + stats.Oracle.sim_cycles;
              if stats.Oracle.bdd_exact then incr bdd_exact_runs
              else
                bdd_sampled_vectors :=
                  !bdd_sampled_vectors + stats.Oracle.bdd_sampled_vectors;
              (* Negative oracle: stripping protection from a mapping
                 that carries discharge transistors should eventually
                 fire PBE events somewhere across the run. *)
              if
                (Domino.Circuit.counts circuit).Domino.Circuit.t_disch > 0
                && !stripped_probes < 32
              then begin
                incr stripped_probes;
                if
                  Oracle.stripped_events ~sim_pairs:params.sim_pairs
                    ~seed:oracle_seed circuit
                  > 0
                then incr stripped_event_probes
              end
          | O_fail { burned; shape; u; cfg; oracle_seed; failure = f } ->
              skipped := !skipped + burned;
              incr runs;
              first_failure := Some (!runs, shape, u, cfg, oracle_seed, f);
              stopped := true
          | O_timeout { burned; net_seed; reason } ->
              (* The run is recorded, with the seed that rebuilds its
                 network, and the loop carries on: a deadline is a
                 resource verdict, not a correctness one. *)
              skipped := !skipped + burned;
              timeouts :=
                { Report.t_run = !base + k + 1; t_net_seed = net_seed;
                  t_reason = reason }
                :: !timeouts
          | O_aborted { site = _ } ->
              (* Killed by an injected raise; the fault itself was
                 already counted from [faults]. *)
              ()
        end)
      results;
    base := !base + n;
    if not !stopped then params.on_progress (snapshot ~complete:false None)
  done;
  (* Shrinking stays serial: it is a greedy fixpoint over oracle calls
     seeded by the failing run, already deterministic. *)
  let counterexample =
    match !first_failure with
    | None -> None
    | Some (run, shape, u, cfg, oracle_seed, f) ->
        params.log
          (Printf.sprintf "run %d FAILED (%s): %s — shrinking" run
             (Oracle.kind_name f.Oracle.kind)
             f.Oracle.detail);
        (* One memo table across the serial shrink phase: candidate
           networks share most of their structure with the original, so
           the repeated oracle rebuilds are mostly hits; exactness keeps
           the shrink trajectory identical to an uncached one. *)
        let memo = Mapper.Memo.create ~shards:1 () in
        let check u' cfg' =
          Oracle.check ~eval_vectors:params.eval_vectors
            ~sim_pairs:params.sim_pairs ~seed:oracle_seed ~memo u' cfg'
        in
        let fails u' cfg' =
          match check u' cfg' with
          | Oracle.Fail f' -> f'.Oracle.kind = f.Oracle.kind
          | Oracle.Pass _ -> false
        in
        let shrunk =
          Obs.Trace.with_span ~cat:"fuzz" "fuzz.shrink" (fun () ->
              Shrink.minimize ~max_checks:params.shrink_checks ~fails u cfg)
        in
        Obs.Metrics.add m_shrink_checks shrunk.Shrink.checks;
        (* Re-run the shrunk pair to report its (possibly sharper)
           failure detail. *)
        let detail, cex_input, cex_output =
          match check shrunk.Shrink.u shrunk.Shrink.cfg with
          | Oracle.Fail f' ->
              (f'.Oracle.detail, f'.Oracle.cex_input, f'.Oracle.cex_output)
          | Oracle.Pass _ ->
              (f.Oracle.detail, f.Oracle.cex_input, f.Oracle.cex_output)
        in
        Some
          {
            Report.run;
            net_seed = shape.ns_seed;
            net_inputs = shape.ns_inputs;
            net_gates = shape.ns_gates;
            net_outputs = shape.ns_outputs;
            oracle = Oracle.kind_name f.Oracle.kind;
            detail;
            cex_input = Option.map Report.bits_of_input cex_input;
            cex_output;
            config = cfg;
            shrunk_nodes = Unetwork.node_count shrunk.Shrink.u;
            shrunk_outputs = Array.length (Unetwork.outputs shrunk.Shrink.u);
            shrunk_config = shrunk.Shrink.cfg;
            shrunk_dump = Report.dump_unetwork shrunk.Shrink.u;
            shrink_checks = shrunk.Shrink.checks;
          }
  in
  snapshot ~complete:(not !stopped) counterexample
