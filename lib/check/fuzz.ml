open Unate

(* The differential fuzz loop: generate a random multi-level network,
   unate-decompose it, sample a mapper configuration, and drive the
   mapped circuit through all three oracles.  The first failure is
   shrunk to a minimal counterexample and reported.  Everything is
   deterministic in [params.seed]. *)

type params = {
  seed : int;
  budget : int;       (* number of (network, configuration) runs *)
  max_nodes : int;    (* reject generated unate networks larger than this *)
  eval_vectors : int; (* per-run budget of the bit-parallel oracle *)
  sim_pairs : int;    (* per-run hold/strike pairs for the PBE oracle *)
  shrink_checks : int;
  log : string -> unit;
}

let default_params =
  {
    seed = 1;
    budget = 100;
    max_nodes = 400;
    eval_vectors = 1024;
    sim_pairs = 16;
    shrink_checks = 2_000;
    log = ignore;
  }

type net_shape = {
  ns_seed : int;
  ns_inputs : int;
  ns_gates : int;
  ns_outputs : int;
}

let usable u max_nodes =
  Unetwork.node_count u >= 1
  && Unetwork.node_count u <= max_nodes
  && Shrink.valid u

(* Draw generator parameters until decomposition yields a mappable
   network.  Returns the attempts burned so the report can count them. *)
let gen_unetwork rng max_nodes =
  let rec attempt burned tries =
    if tries = 0 then (None, burned)
    else begin
      let open Logic in
      let shape =
        {
          ns_seed = Rng.int rng 1_000_000;
          ns_inputs = Rng.int_in rng 4 9;
          ns_gates = Rng.int_in rng 6 40;
          ns_outputs = Rng.int_in rng 1 4;
        }
      in
      let net =
        Gen.Random_logic.generate
          (Gen.Random_logic.default
             ~name:(Printf.sprintf "fuzz%d" shape.ns_seed)
             ~inputs:shape.ns_inputs ~gates:shape.ns_gates
             ~outputs:shape.ns_outputs ~seed:shape.ns_seed)
      in
      let u = Mapper.Algorithms.prepare net in
      if usable u max_nodes then (Some (u, shape), burned)
      else attempt (burned + 1) (tries - 1)
    end
  in
  attempt 0 8

let run params =
  let rng = Logic.Rng.create (params.seed lxor 0xF022) in
  let runs = ref 0 and skipped = ref 0 in
  let eval_vectors = ref 0 and sim_cycles = ref 0 in
  let bdd_exact_runs = ref 0 in
  let stripped_probes = ref 0 and stripped_event_probes = ref 0 in
  let counterexample = ref None in
  let exhausted = ref false in
  while (not !exhausted) && !runs < params.budget && !counterexample = None do
    let candidate, burned = gen_unetwork rng params.max_nodes in
    skipped := !skipped + burned;
    match candidate with
    | None -> exhausted := true  (* generator gave up; report honest counts *)
    | Some (u, shape) -> (
        incr runs;
        let cfg = Gen_config.sample rng in
        let oracle_seed = Logic.Rng.int rng 0x3FFFFFFF in
        let check u cfg =
          Oracle.check ~eval_vectors:params.eval_vectors
            ~sim_pairs:params.sim_pairs ~seed:oracle_seed u cfg
        in
        match check u cfg with
        | Oracle.Pass stats ->
            eval_vectors := !eval_vectors + stats.Oracle.eval_vectors;
            sim_cycles := !sim_cycles + stats.Oracle.sim_cycles;
            if stats.Oracle.bdd_exact then incr bdd_exact_runs;
            (* Negative oracle: stripping protection from a mapping that
               carries discharge transistors should eventually fire PBE
               events somewhere across the run. *)
            let circuit = Oracle.build u cfg in
            if
              (Domino.Circuit.counts circuit).Domino.Circuit.t_disch > 0
              && !stripped_probes < 32
            then begin
              incr stripped_probes;
              if
                Oracle.stripped_events ~sim_pairs:params.sim_pairs
                  ~seed:oracle_seed circuit
                > 0
              then incr stripped_event_probes
            end
        | Oracle.Fail f ->
            params.log
              (Printf.sprintf "run %d FAILED (%s): %s — shrinking" !runs
                 (Oracle.kind_name f.Oracle.kind)
                 f.Oracle.detail);
            let fails u' cfg' =
              match check u' cfg' with
              | Oracle.Fail f' -> f'.Oracle.kind = f.Oracle.kind
              | Oracle.Pass _ -> false
            in
            let shrunk =
              Shrink.minimize ~max_checks:params.shrink_checks ~fails u cfg
            in
            (* Re-run the shrunk pair to report its (possibly sharper)
               failure detail. *)
            let detail, cex_input, cex_output =
              match check shrunk.Shrink.u shrunk.Shrink.cfg with
              | Oracle.Fail f' ->
                  (f'.Oracle.detail, f'.Oracle.cex_input, f'.Oracle.cex_output)
              | Oracle.Pass _ ->
                  (f.Oracle.detail, f.Oracle.cex_input, f.Oracle.cex_output)
            in
            counterexample :=
              Some
                {
                  Report.run = !runs;
                  net_seed = shape.ns_seed;
                  net_inputs = shape.ns_inputs;
                  net_gates = shape.ns_gates;
                  net_outputs = shape.ns_outputs;
                  oracle = Oracle.kind_name f.Oracle.kind;
                  detail;
                  cex_input = Option.map Report.bits_of_input cex_input;
                  cex_output;
                  config = cfg;
                  shrunk_nodes = Unetwork.node_count shrunk.Shrink.u;
                  shrunk_outputs =
                    Array.length (Unetwork.outputs shrunk.Shrink.u);
                  shrunk_config = shrunk.Shrink.cfg;
                  shrunk_dump = Report.dump_unetwork shrunk.Shrink.u;
                  shrink_checks = shrunk.Shrink.checks;
                })
  done;
  {
    Report.seed = params.seed;
    budget = params.budget;
    runs = !runs;
    skipped = !skipped;
    eval_vectors = !eval_vectors;
    sim_cycles = !sim_cycles;
    bdd_exact_runs = !bdd_exact_runs;
    stripped_probes = !stripped_probes;
    stripped_event_probes = !stripped_event_probes;
    counterexample = !counterexample;
  }
