open Mapper
open Domino

(* Cross-checks one mapped circuit against three independent oracles:

     1. BDD equivalence ([Logic.Equiv]) on the network reconstructed from
        the domino circuit, with a Monte-Carlo fallback ([Logic.Eval])
        when the BDD node limit is hit;
     2. bit-parallel evaluation: [Circuit.eval64] against
        [Unetwork.eval64] on random 64-wide vectors — a code path that
        shares nothing with the BDD reconstruction;
     3. the switch-level PBE simulator ([Sim.Domino_sim]): a properly
        discharged mapping must produce zero parasitic-bipolar events and
        zero corrupted cycles under body-charging hold/strike stimulus.

   Structural validation and mapper crashes are reported as their own
   failure kinds so the shrinker can preserve them. *)

type kind = Structure | Bdd | Eval | Pbe | Crash

let kind_name = function
  | Structure -> "structure"
  | Bdd -> "bdd"
  | Eval -> "eval"
  | Pbe -> "pbe"
  | Crash -> "crash"

type failure = {
  kind : kind;
  detail : string;
  cex_input : bool array option;  (* concrete input assignment, if known *)
  cex_output : string option;
}

type stats = {
  eval_vectors : int;  (* vectors checked by the bit-parallel oracle *)
  sim_cycles : int;    (* clock cycles simulated by the PBE oracle *)
  bdd_exact : bool;    (* false when the BDD node cap forced sampling *)
  bdd_sampled_vectors : int;  (* vectors drawn by that fallback (0 if exact) *)
}

type verdict = Pass of stats | Fail of failure

let fail kind fmt =
  Printf.ksprintf
    (fun detail -> Fail { kind; detail; cex_input = None; cex_output = None })
    fmt

(* Map [u] under [cfg], applying the flow postprocess the paper pairs with
   each style: bulk circuits get their discharge transistors from the
   standalone analysis pass, SOI circuits carry the engine's own.  With
   [cfg.rewrite > 0] the rewrite portfolio picks among restructured
   variants — the oracles downstream still compare against the original
   [u], so a pass certifies the rewriting layer end to end. *)
let postprocess_of (cfg : Gen_config.t) circuit =
  let circuit =
    match cfg.Gen_config.opts.Engine.style with
    | Engine.Bulk -> Postprocess.insert_discharges circuit
    | Engine.Soi -> circuit
  in
  if cfg.Gen_config.rearrange then Postprocess.rearrange_stacks circuit
  else circuit

let map_choice ?budget ?memo u (cfg : Gen_config.t) =
  Restructure.map_best ?budget ?memo ~limit:cfg.Gen_config.rewrite
    ~postprocess:(postprocess_of cfg) cfg.Gen_config.opts u

let build ?budget ?memo u (cfg : Gen_config.t) =
  if cfg.Gen_config.rewrite > 0 then
    (map_choice ?budget ?memo u cfg).Restructure.circuit
  else
    let circuit, _stats = Engine.map ?budget ?memo cfg.Gen_config.opts u in
    postprocess_of cfg circuit

(* The network the mapping actually implements: the rewrite portfolio's
   winner, or [u] itself when the front end is off.  The exact-
   optimality oracle certifies this network — the DP ran on it. *)
let chosen_network ?budget ?memo u (cfg : Gen_config.t) =
  if cfg.Gen_config.rewrite > 0 then
    (map_choice ?budget ?memo u cfg).Restructure.chosen
  else u

(* BDD equivalence with the degradation ladder built in: per-output-cone
   BDDs under the budget's node cap, each blown cone degrading to seeded
   bit-parallel sampling (the vector count lands in the stats).  Returns
   [Ok (exact, sampled_vectors)] on agreement. *)
let check_bdd ~budget ~seed u circuit =
  let source = Unate.Unetwork.to_network u in
  let limit = Resilience.Budget.max_bdd_nodes budget in
  let checked =
    Logic.Equiv.networks_per_output_or_sample ?limit ~seed:(seed lxor 0xB0D)
      source (Circuit.to_network circuit)
  in
  match checked.Logic.Equiv.verdict with
  | Logic.Equiv.Equivalent ->
      Ok (checked.Logic.Equiv.exact, checked.Logic.Equiv.sampled_vectors)
  | Logic.Equiv.Counterexample { input; output } ->
      Error
        {
          kind = Bdd;
          detail =
            (if checked.Logic.Equiv.exact then
               "BDD reconstruction differs from source"
             else "sampled fallback: reconstruction differs from source");
          cex_input = Some input;
          cex_output = Some output;
        }
  | Logic.Equiv.Unknown reason ->
      (* Only interface mismatches survive the sampling fallback. *)
      Error
        { kind = Bdd; detail = reason; cex_input = None; cex_output = None }

let check_eval ~budget ~vectors ~rng u circuit =
  let n = Array.length (Unate.Unetwork.inputs u) in
  let rounds = (vectors + 63) / 64 in
  let failure = ref None in
  let round = ref 0 in
  while !failure = None && !round < rounds do
    incr round;
    Resilience.Budget.check_deadline budget;
    let words = Array.init n (fun _ -> Logic.Rng.next64 rng) in
    let rc = Circuit.eval64 circuit words in
    let ru = Unate.Unetwork.eval64 u words in
    let tbl = Hashtbl.create 16 in
    Array.iter (fun (nm, v) -> Hashtbl.replace tbl nm v) ru;
    Array.iter
      (fun (nm, v) ->
        if !failure = None then
          match Hashtbl.find_opt tbl nm with
          | Some v' when v = v' -> ()
          | Some v' ->
              let diff = Int64.logxor v v' in
              let lane = ref 0 in
              while
                Int64.logand (Int64.shift_right_logical diff !lane) 1L = 0L
              do
                incr lane
              done;
              let input =
                Array.map
                  (fun w ->
                    Int64.logand (Int64.shift_right_logical w !lane) 1L = 1L)
                  words
              in
              failure :=
                Some
                  {
                    kind = Eval;
                    detail = "bit-parallel evaluation differs from source";
                    cex_input = Some input;
                    cex_output = Some nm;
                  }
          | None ->
              failure :=
                Some
                  {
                    kind = Eval;
                    detail = Printf.sprintf "output %s missing from circuit" nm;
                    cex_input = None;
                    cex_output = Some nm;
                  })
      rc
  done;
  match !failure with Some f -> Error f | None -> Ok (rounds * 64)

let check_pbe ~pairs ~rng circuit =
  let n = Array.length circuit.Circuit.input_names in
  let stimulus =
    Sim.Domino_sim.hold_strike_stimulus ~rng ~pairs n
    @ List.init 32 (fun _ -> Array.init n (fun _ -> Logic.Rng.bool rng))
  in
  let cycles = List.length stimulus in
  let r = Sim.Domino_sim.run circuit stimulus in
  if r.Sim.Domino_sim.total_events > 0 || r.Sim.Domino_sim.corrupted_cycles > 0
  then
    Error
      {
        kind = Pbe;
        detail =
          Printf.sprintf
            "%d parasitic-bipolar events, %d corrupted cycles on a protected \
             mapping"
            r.Sim.Domino_sim.total_events r.Sim.Domino_sim.corrupted_cycles;
        cex_input = None;
        cex_output = None;
      }
  else Ok cycles

(* The wall clock is consulted between stages and inside each stage's
   round loop; [inject] fires the chaos faults at the stage boundaries.
   Budget exhaustion and injected faults are *not* oracle verdicts: they
   re-raise so the driver can record the run as a timeout / injected
   fault instead of a mapper crash. *)
let check ?(eval_vectors = 2048) ?(sim_pairs = 24) ?(seed = 0)
    ?(budget = Resilience.Budget.unlimited)
    ?(inject = Resilience.Chaos.no_point) ?memo u cfg =
  Resilience.Budget.check_deadline budget;
  inject ~site:"oracle.map";
  match build ~budget ?memo u cfg with
  | exception (Resilience.Budget.Exhausted _ as e) -> raise e
  | exception e -> fail Crash "mapper raised: %s" (Printexc.to_string e)
  | circuit -> (
      match Circuit.validate circuit with
      | Error e -> fail Structure "invalid circuit: %s" e
      | Ok () -> (
          Resilience.Budget.check_deadline budget;
          inject ~site:"oracle.bdd";
          match check_bdd ~budget ~seed u circuit with
          | Error f -> Fail f
          | Ok (bdd_exact, bdd_sampled_vectors) -> (
              let rng = Logic.Rng.create (seed lxor 0xD1FF) in
              inject ~site:"oracle.eval";
              match check_eval ~budget ~vectors:eval_vectors ~rng u circuit with
              | Error f -> Fail f
              | Ok eval_vectors -> (
                  Resilience.Budget.check_deadline budget;
                  inject ~site:"oracle.pbe";
                  match check_pbe ~pairs:sim_pairs ~rng circuit with
                  | Error f -> Fail f
                  | Ok sim_cycles ->
                      Pass
                        { eval_vectors; sim_cycles; bdd_exact;
                          bdd_sampled_vectors }))))

(* Negative oracle: the same stimulus against the mapping with its
   discharge transistors stripped.  Returns the event count — the caller
   aggregates, because a single circuit is not guaranteed to expose PBE
   (its stacks may all be parallel-free). *)
let stripped_events ?(sim_pairs = 48) ?(seed = 0) circuit =
  let stripped = Postprocess.strip_discharges circuit in
  let n = Array.length circuit.Circuit.input_names in
  let rng = Logic.Rng.create (seed lxor 0x57A1) in
  let stimulus = Sim.Domino_sim.hold_strike_stimulus ~rng ~pairs:sim_pairs n in
  let r = Sim.Domino_sim.run stripped stimulus in
  r.Sim.Domino_sim.total_events
