(* End-to-end chaos drills: prove, under seeded injected faults, that
   the pipeline's fault-tolerance claims hold — a raising task cannot
   wedge or poison the domain pool, a budgeted mapper degrades to a
   still-correct mapping, and a chaos-wrapped fuzz run accounts for
   every injected fault in its report.  The test-suite and the CI chaos
   leg both drive these. *)

open Resilience

(* ------------------------------------------------------------------ *)
(* Pool storm: batches of tasks that raise/delay/exhaust at seeded     *)
(* points, each storm followed by a real batch that must still work.   *)
(* ------------------------------------------------------------------ *)

type storm_result = {
  storms : int;  (* batches submitted *)
  propagated : int;  (* storms whose first fault re-raised at the submitter *)
  injected : int;  (* faults the injector fired, all kinds *)
  usable : bool;  (* every post-storm verification batch was correct *)
}

let pool_storm ?(rounds = 4) ~jobs ~tasks ~seed () =
  let chaos = Chaos.make ~rate:0.5 ~delay:0.0002 ~seed () in
  let pool = Parallel.Pool.create ~jobs in
  Fun.protect ~finally:(fun () -> Parallel.Pool.shutdown pool) @@ fun () ->
  let propagated = ref 0 in
  let usable = ref true in
  let reference = Array.init 32 (fun i -> i * i) in
  for r = 0 to rounds - 1 do
    (match
       Parallel.Pool.map pool
         (fun i ->
           Chaos.inject chaos ~site:"pool.task" ~salt:((r * tasks) + i) ();
           i)
         (Array.init tasks Fun.id)
     with
    | _ -> ()
    | exception Chaos.Injected _ -> incr propagated
    | exception Budget.Exhausted (Budget.Injected _) -> incr propagated);
    (* The pool must survive the storm and still compute correctly. *)
    let out = Parallel.Pool.map pool (fun i -> i * i) (Array.init 32 Fun.id) in
    if out <> reference then usable := false
  done;
  {
    storms = rounds;
    propagated = !propagated;
    injected = Chaos.total_injected chaos;
    usable = !usable;
  }

(* ------------------------------------------------------------------ *)
(* Chaos-wrapped fuzzing and fault accounting.                         *)
(* ------------------------------------------------------------------ *)

let fuzz_storm ?(rate = 0.25) ?run_timeout ~seed ~budget () =
  let chaos = Chaos.make ~rate ~seed () in
  let params =
    { Fuzz.default_params with Fuzz.seed; budget; chaos; run_timeout }
  in
  (Fuzz.run params, chaos)

(* A complete report must mention every fault the injector fired: the
   merged (raises + delays + exhausts) equals the injector's counter.
   An early-stopped report discards the outcomes computed past the stop
   point, so its merged counts legitimately undercount; accounting is
   then unverifiable and the merged count is returned as-is. *)
let verify_accounting chaos (report : Report.t) =
  let merged =
    report.Report.chaos.Report.raises + report.Report.chaos.Report.delays
    + report.Report.chaos.Report.exhausts
  in
  if not report.Report.complete then Ok merged
  else
    let fired = Chaos.total_injected chaos in
    if merged = fired then Ok merged
    else
      Error
        (Printf.sprintf
           "chaos accounting mismatch: %d faults injected but %d in the \
            report (%d raises, %d delays, %d exhausts)"
           fired merged report.Report.chaos.Report.raises
           report.Report.chaos.Report.delays
           report.Report.chaos.Report.exhausts)

(* ------------------------------------------------------------------ *)
(* Degradation sweep: the acceptance drill for budgeted mapping.       *)
(* ------------------------------------------------------------------ *)

type sweep_row = {
  bench : string;
  outcome : string;  (* "ok" | "degraded" | "failed" *)
  equivalent : bool;  (* the mapped (possibly degraded) circuit verified *)
}

(* Map every suite circuit under a deliberately tiny tuple budget with
   the degrade policy: every row must come back Ok or Degraded — never
   Failed — and the resulting circuit must still verify equivalent to
   its source (sampled equivalence is accepted; the point here is the
   mapping, not the prover). *)
let degradation_sweep ?(max_tuples = 500) ?(vectors = 2048) () =
  List.map
    (fun e ->
      let net = e.Gen.Suite.build () in
      let budget = Budget.make ~max_tuples () in
      let outcome =
        Mapper.Algorithms.run_outcome ~budget ~on_exhaust:`Degrade
          Mapper.Algorithms.Soi_domino_map net
      in
      let equivalent =
        match Outcome.value outcome with
        | None -> false
        | Some r ->
            Domino.Circuit.equivalent_to ~vectors r.Mapper.Algorithms.circuit
              r.Mapper.Algorithms.unate
      in
      { bench = e.Gen.Suite.name; outcome = Outcome.label outcome; equivalent })
    Gen.Suite.all
