(* End-to-end chaos drills: prove, under seeded injected faults, that
   the pipeline's fault-tolerance claims hold — a raising task cannot
   wedge or poison the domain pool, a budgeted mapper degrades to a
   still-correct mapping, and a chaos-wrapped fuzz run accounts for
   every injected fault in its report.  The test-suite and the CI chaos
   leg both drive these. *)

open Resilience

(* ------------------------------------------------------------------ *)
(* Pool storm: batches of tasks that raise/delay/exhaust at seeded     *)
(* points, each storm followed by a real batch that must still work.   *)
(* ------------------------------------------------------------------ *)

type storm_result = {
  storms : int;  (* batches submitted *)
  propagated : int;  (* storms whose first fault re-raised at the submitter *)
  injected : int;  (* faults the injector fired, all kinds *)
  usable : bool;  (* every post-storm verification batch was correct *)
}

let pool_storm ?(rounds = 4) ~jobs ~tasks ~seed () =
  let chaos = Chaos.make ~rate:0.5 ~delay:0.0002 ~seed () in
  let pool = Parallel.Pool.create ~jobs in
  Fun.protect ~finally:(fun () -> Parallel.Pool.shutdown pool) @@ fun () ->
  let propagated = ref 0 in
  let usable = ref true in
  let reference = Array.init 32 (fun i -> i * i) in
  for r = 0 to rounds - 1 do
    (match
       Parallel.Pool.map pool
         (fun i ->
           Chaos.inject chaos ~site:"pool.task" ~salt:((r * tasks) + i) ();
           i)
         (Array.init tasks Fun.id)
     with
    | _ -> ()
    | exception Chaos.Injected _ -> incr propagated
    | exception Budget.Exhausted (Budget.Injected _) -> incr propagated);
    (* The pool must survive the storm and still compute correctly. *)
    let out = Parallel.Pool.map pool (fun i -> i * i) (Array.init 32 Fun.id) in
    if out <> reference then usable := false
  done;
  {
    storms = rounds;
    propagated = !propagated;
    injected = Chaos.total_injected chaos;
    usable = !usable;
  }

(* ------------------------------------------------------------------ *)
(* Chaos-wrapped fuzzing and fault accounting.                         *)
(* ------------------------------------------------------------------ *)

let fuzz_storm ?(rate = 0.25) ?run_timeout ~seed ~budget () =
  let chaos = Chaos.make ~rate ~seed () in
  let params =
    { Fuzz.default_params with Fuzz.seed; budget; chaos; run_timeout }
  in
  (Fuzz.run params, chaos)

(* A complete report must mention every fault the injector fired: the
   merged (raises + delays + exhausts) equals the injector's counter.
   An early-stopped report discards the outcomes computed past the stop
   point, so its merged counts legitimately undercount; accounting is
   then unverifiable and the merged count is returned as-is. *)
let verify_accounting chaos (report : Report.t) =
  let merged =
    report.Report.chaos.Report.raises + report.Report.chaos.Report.delays
    + report.Report.chaos.Report.exhausts
  in
  if not report.Report.complete then Ok merged
  else
    let fired = Chaos.total_injected chaos in
    if merged = fired then Ok merged
    else
      Error
        (Printf.sprintf
           "chaos accounting mismatch: %d faults injected but %d in the \
            report (%d raises, %d delays, %d exhausts)"
           fired merged report.Report.chaos.Report.raises
           report.Report.chaos.Report.delays
           report.Report.chaos.Report.exhausts)

(* ------------------------------------------------------------------ *)
(* Degradation sweep: the acceptance drill for budgeted mapping.       *)
(* ------------------------------------------------------------------ *)

type sweep_row = {
  bench : string;
  outcome : string;  (* "ok" | "degraded" | "failed" *)
  equivalent : bool;  (* the mapped (possibly degraded) circuit verified *)
}

(* Map every suite circuit under a deliberately tiny tuple budget with
   the degrade policy: every row must come back Ok or Degraded — never
   Failed — and the resulting circuit must still verify equivalent to
   its source (sampled equivalence is accepted; the point here is the
   mapping, not the prover). *)
let degradation_sweep ?(max_tuples = 500) ?(vectors = 2048) () =
  List.map
    (fun e ->
      let net = e.Gen.Suite.build () in
      let budget = Budget.make ~max_tuples () in
      let outcome =
        Mapper.Algorithms.run_outcome ~budget ~on_exhaust:`Degrade
          Mapper.Algorithms.Soi_domino_map net
      in
      let equivalent =
        match Outcome.value outcome with
        | None -> false
        | Some r ->
            Domino.Circuit.equivalent_to ~vectors r.Mapper.Algorithms.circuit
              r.Mapper.Algorithms.unate
      in
      { bench = e.Gen.Suite.name; outcome = Outcome.label outcome; equivalent })
    Gen.Suite.all

(* ------------------------------------------------------------------ *)
(* Daemon storm: hostile clients against a live soimapd.               *)
(* ------------------------------------------------------------------ *)

type daemon_storm_result = {
  frames : int;  (* hostile/legit frames sent that expect a response *)
  aborted : int;  (* mid-frame disconnects (no response expected) *)
  d_ok : int;
  d_degraded : int;
  d_failed : int;
  d_rejected : int;
  d_errors : int;
  ledger : (string * int) list;  (* the daemon's closing service ledger *)
  ledger_ok : bool;  (* requests = ok + degraded + failed + rejected *)
  alive : bool;  (* the daemon still answers ping after the storm *)
}

let sockaddr_of = function
  | Service.Protocol.Unix_sock path -> (Unix.ADDR_UNIX path, Unix.PF_UNIX)
  | Service.Protocol.Tcp (host, port) ->
      let inet =
        try (Unix.gethostbyname host).Unix.h_addr_list.(0)
        with Not_found | Invalid_argument _ ->
          Unix.inet_addr_of_string "127.0.0.1"
      in
      (Unix.ADDR_INET (inet, port), Unix.PF_INET)

(* Half a frame, then vanish: the server must count a disconnect and
   carry on; nothing here can fail the drill. *)
let abort_mid_frame addr =
  let sa, dom = sockaddr_of addr in
  match Unix.socket dom Unix.SOCK_STREAM 0 with
  | exception Unix.Unix_error _ -> ()
  | fd -> (
      match
        Unix.connect fd sa;
        let junk = {|{"id":"gone","op":"map","format":"suite","pay|} in
        ignore (Unix.write_substring fd junk 0 (String.length junk))
      with
      | () | (exception Unix.Unix_error _) -> (
          try Unix.close fd with Unix.Unix_error _ -> ()))

type tally = {
  mutable t_frames : int;
  mutable t_aborted : int;
  mutable t_ok : int;
  mutable t_degraded : int;
  mutable t_failed : int;
  mutable t_rejected : int;
  mutable t_errors : int;
  mutable t_transport : int;  (* lost responses: must stay 0 *)
}

let new_tally () =
  {
    t_frames = 0;
    t_aborted = 0;
    t_ok = 0;
    t_degraded = 0;
    t_failed = 0;
    t_rejected = 0;
    t_errors = 0;
    t_transport = 0;
  }

let record tally = function
  | Result.Error _ -> tally.t_transport <- tally.t_transport + 1
  | Result.Ok j -> (
      match Service.Protocol.response_status j with
      | Ok "ok" -> tally.t_ok <- tally.t_ok + 1
      | Ok "degraded" -> tally.t_degraded <- tally.t_degraded + 1
      | Ok "failed" -> tally.t_failed <- tally.t_failed + 1
      | Ok "rejected" -> tally.t_rejected <- tally.t_rejected + 1
      | Ok "error" -> tally.t_errors <- tally.t_errors + 1
      | Ok _ | Error _ -> tally.t_transport <- tally.t_transport + 1)

(* One hostile client: a seeded mix of malformed frames, oversized
   payloads, mid-frame disconnects, budget-tripping and unparsable
   cones, and legitimate maps.  One connection per action, so the
   accept/close path is stormed too. *)
let storm_worker ~addr ~oversize ~rounds ~seed tally =
  let rng = Logic.Rng.create seed in
  let with_conn f =
    match Service.Client.connect ~timeout:30.0 addr with
    | Error _ -> tally.t_transport <- tally.t_transport + 1
    | Ok c -> Fun.protect ~finally:(fun () -> Service.Client.close c) (fun () -> f c)
  in
  let expect c line =
    tally.t_frames <- tally.t_frames + 1;
    record tally (Service.Client.request c line)
  in
  for _ = 1 to rounds do
    match Logic.Rng.int rng 8 with
    | 0 ->
        (* malformed json *)
        with_conn (fun c -> expect c "]]]{{{ not json")
    | 1 ->
        (* valid json, invalid request: the CLI's --timeout 0 rule *)
        with_conn (fun c ->
            expect c
              {|{"id":"z","op":"map","format":"suite","payload":"z4ml","timeout":0}|})
    | 2 ->
        (* oversized frame: must get an error line back, then the
           server closes the connection *)
        with_conn (fun c ->
            tally.t_frames <- tally.t_frames + 1;
            let big = String.make (oversize + 4096) 'x' in
            match Service.Client.send_line c big with
            | Error _ ->
                (* the server may slam the door before reading it all *)
                tally.t_errors <- tally.t_errors + 1
            | Ok () -> record tally (Service.Client.request c "\"tail\""))
    | 3 ->
        tally.t_aborted <- tally.t_aborted + 1;
        abort_mid_frame addr
    | 4 ->
        (* budget-tripping cone under fail: an honest failed response *)
        with_conn (fun c ->
            expect c
              {|{"id":"trip","op":"map","format":"suite","payload":"c880","max_tuples":1,"on_exhaust":"fail"}|})
    | 5 ->
        (* unparsable payload: failed, isolated to this request *)
        with_conn (fun c ->
            expect c
              {|{"id":"junk","op":"map","format":"blif","payload":".model x\n.inputs a\n.outputs z\n.names a a a z\nBOGUS\n.end"}|})
    | 6 ->
        (* budget-tripping cone under degrade: still a mapped answer *)
        with_conn (fun c ->
            expect c
              {|{"id":"deg","op":"map","format":"suite","payload":"c880","max_tuples":1}|})
    | _ ->
        with_conn (fun c ->
            expect c
              (Printf.sprintf
                 {|{"id":"m%d","op":"map","format":"suite","payload":"z4ml","delay_ms":%d}|}
                 (Logic.Rng.int rng 1000)
                 (Logic.Rng.int rng 20)))
  done

let storm_addr ~addr ~oversize ~workers ~rounds ~seed () =
  let tallies = Array.init workers (fun _ -> new_tally ()) in
  let threads =
    Array.mapi
      (fun w tally ->
        Thread.create
          (fun () ->
            storm_worker ~addr ~oversize ~rounds ~seed:(seed + (w * 7919))
              tally)
          ())
      tallies
  in
  Array.iter Thread.join threads;
  let sum f = Array.fold_left (fun acc t -> acc + f t) 0 tallies in
  (* Post-storm: the daemon must still answer, and its ledger must
     balance.  Both come over the wire, so this also works against an
     external daemon (the CI soak leg). *)
  let alive, ledger =
    match Service.Client.connect ~timeout:30.0 addr with
    | Error _ -> (false, [])
    | Ok c ->
        Fun.protect ~finally:(fun () -> Service.Client.close c) @@ fun () ->
        let alive =
          match Service.Client.request c {|{"id":"alive","op":"ping"}|} with
          | Ok j -> Service.Protocol.response_status j = Ok "ok"
          | Error _ -> false
        in
        let ledger =
          match Service.Client.request c {|{"id":"l","op":"stats"}|} with
          | Error _ -> []
          | Ok j -> (
              match Obs.Json.member "service" j with
              | Some (Obs.Json.Obj fields) ->
                  List.filter_map
                    (fun (k, v) ->
                      Option.map (fun n -> (k, n)) (Obs.Json.to_int v))
                    fields
              | _ -> [])
        in
        (alive, ledger)
  in
  let lv k = try List.assoc k ledger with Not_found -> 0 in
  let ledger_ok =
    ledger <> []
    && lv "requests"
       = lv "ok" + lv "degraded" + lv "failed" + lv "rejected"
  in
  {
    frames = sum (fun t -> t.t_frames);
    aborted = sum (fun t -> t.t_aborted);
    d_ok = sum (fun t -> t.t_ok);
    d_degraded = sum (fun t -> t.t_degraded);
    d_failed = sum (fun t -> t.t_failed);
    d_rejected = sum (fun t -> t.t_rejected);
    d_errors = sum (fun t -> t.t_errors);
    ledger;
    ledger_ok;
    alive;
  }

let daemon_storm ?addr ?(workers = 4) ?(rounds = 12) ~seed () =
  match addr with
  | Some addr ->
      (* External daemon (CI soak): storm it over the wire only. *)
      storm_addr ~addr ~oversize:(1 lsl 20) ~workers ~rounds ~seed ()
  | None ->
      (* Self-hosted: spin a daemon up in-process with a deliberately
         tight config (small queue, small frames, short budgets) so the
         hostile paths actually fire, then drain it and require a clean
         exit. *)
      let path =
        Filename.concat
          (Filename.get_temp_dir_name ())
          (Printf.sprintf "soimapd-storm-%d-%d.sock" (Unix.getpid ()) seed)
      in
      let addr = Service.Protocol.Unix_sock path in
      let oversize = 1 lsl 16 in
      let cfg =
        {
          (Service.Server.default_config ~addr) with
          Service.Server.queue_depth = 8;
          max_connections = 32;
          dispatchers = 2;
          max_request_bytes = oversize;
          io_timeout = 5.0;
          drain_timeout = 10.0;
          default_timeout = 10.0;
          max_timeout = 10.0;
          max_delay_ms = 50;
        }
      in
      let srv = Service.Server.create cfg in
      let runner = Thread.create (fun () -> Service.Server.run srv) () in
      let deadline = Int64.add (Obs.Clock.now_ns ()) 5_000_000_000L in
      while
        (not (Service.Server.listening srv))
        && Int64.compare (Obs.Clock.now_ns ()) deadline < 0
      do
        Thread.yield ()
      done;
      let result = storm_addr ~addr ~oversize ~workers ~rounds ~seed () in
      Service.Server.request_stop srv;
      Thread.join runner;
      (try Unix.unlink path with Unix.Unix_error _ -> ());
      result
