open Mapper

(* A mapper configuration under test: engine options plus the optional
   stack-rearrangement postprocess the paper's RS_Map / SOI_Domino_Map
   flows apply.  [Fuzz] samples these; [Shrink] simplifies them. *)

type t = {
  opts : Engine.options;
  rearrange : bool;
  rewrite : int;  (* rewrite-portfolio variant cap; 0 = front end off *)
}

let default = { opts = Engine.default_options; rearrange = false; rewrite = 0 }

let cost_models =
  [| Cost.area; Cost.clock_weighted 2; Cost.clock_weighted 4; Cost.depth_soi;
     Cost.depth_bulk |]

let cost_by_name name =
  Array.to_list cost_models
  |> List.find_opt (fun (m : Cost.model) -> m.Cost.name = name)

(* Uniform sample over the whole configuration space the engine accepts. *)
let sample rng =
  let open Logic in
  let style = if Rng.bool rng then Engine.Bulk else Engine.Soi in
  {
    opts =
      {
        Engine.w_max = Rng.int_in rng 2 6;
        h_max = Rng.int_in rng 2 10;
        style;
        cost = cost_models.(Rng.int rng (Array.length cost_models));
        both_orders = Rng.bool rng;
        grounded_at_foot = Rng.bool rng;
        pareto_width = Rng.int_in rng 1 4;
      };
    rearrange = Rng.bool rng;
    (* The rewrite front end is CLI-opted (fuzz --rewrite), not sampled:
       its soundness is what the opted-in leg tests, and the plain leg's
       seeds must keep reproducing historical runs. *)
    rewrite = 0;
  }

(* Deterministic sweep used by the suite-agreement tests: every style ×
   order heuristic × foot assumption × frontier width over three W/H
   envelopes, all under the area model. *)
let grid () =
  List.concat_map
    (fun style ->
      List.concat_map
        (fun both_orders ->
          List.concat_map
            (fun grounded_at_foot ->
              List.concat_map
                (fun pareto_width ->
                  List.map
                    (fun (w_max, h_max) ->
                      {
                        opts =
                          {
                            Engine.w_max;
                            h_max;
                            style;
                            cost = Cost.area;
                            both_orders;
                            grounded_at_foot;
                            pareto_width;
                          };
                        rearrange = false;
                        rewrite = 0;
                      })
                    [ (2, 2); (3, 4); (5, 8) ])
                [ 1; 3 ])
            [ true; false ])
        [ true; false ])
    [ Engine.Bulk; Engine.Soi ]

let style_name = function Engine.Bulk -> "bulk" | Engine.Soi -> "soi"

let describe c =
  Printf.sprintf "%s w<=%d h<=%d cost=%s orders=%s foot=%s width=%d%s"
    (style_name c.opts.Engine.style)
    c.opts.Engine.w_max c.opts.Engine.h_max c.opts.Engine.cost.Cost.name
    (if c.opts.Engine.both_orders then "both" else "heuristic")
    (if c.opts.Engine.grounded_at_foot then "grounded" else "floating")
    c.opts.Engine.pareto_width
    (if c.rearrange then " +rearrange" else "")
    ^ (if c.rewrite > 0 then Printf.sprintf " +rewrite=%d" c.rewrite else "")

(* How far a configuration sits from the simplest one of its style; the
   shrinker only accepts steps that lower this. *)
let complexity c =
  c.opts.Engine.w_max + c.opts.Engine.h_max + c.opts.Engine.pareto_width
  + (if c.opts.Engine.both_orders then 0 else 1)
  + (if c.opts.Engine.grounded_at_foot then 0 else 1)
  + (if c.opts.Engine.cost.Cost.name = Cost.area.Cost.name then 0 else 1)
  + (if c.rearrange then 1 else 0)
  + if c.rewrite > 0 then 1 else 0

(* One-field simplifications toward the defaults.  The style is never
   changed: a counterexample is a property of its style's rule set. *)
let simpler c =
  let o = c.opts in
  let candidates =
    [
      { c with rewrite = 0 };
      { c with rearrange = false };
      { c with opts = { o with Engine.cost = Cost.area } };
      { c with opts = { o with Engine.both_orders = true } };
      { c with opts = { o with Engine.grounded_at_foot = true } };
      { c with opts = { o with Engine.pareto_width = 1 } };
      { c with opts = { o with Engine.w_max = o.Engine.w_max - 1 } };
      { c with opts = { o with Engine.h_max = o.Engine.h_max - 1 } };
    ]
  in
  List.filter
    (fun c' ->
      c'.opts.Engine.w_max >= 2 && c'.opts.Engine.h_max >= 2
      && complexity c' < complexity c)
    candidates
