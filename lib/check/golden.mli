(** The golden regression corpus: named, deterministic mapper runs whose
    {!Domino.Circuit.dump} output is checked into [test/golden/].

    Each entry maps a fixed circuit under fixed options (no memo table —
    the corpus pins the {e mapper}, and the cache's transparency is
    proven separately in [test_memo]).  [test_golden] diffs every entry
    against its checked-in file; [bin/golden.exe] regenerates the files
    after a deliberate mapper change. *)

type entry = {
  name : string;  (** basename of the golden file, [name ^ ".txt"] *)
  what : string;  (** one-line description for listings *)
  render : unit -> string;  (** the canonical dump, built fresh each call *)
}

val corpus : entry list
(** Every golden entry: the paper's Figure 3 example, the three mapping
    flows on a common circuit, and a spread of suite / generated
    benchmarks under the default SOI flow. *)

val find : string -> entry option

val filename : entry -> string
(** [filename e] is [e.name ^ ".txt"]. *)

val update_command : string
(** The command a failing diff should tell the user to run. *)
