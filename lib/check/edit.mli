(** Seeded local edits to unate networks.

    The incremental-remap legs (test/test_remap.ml, [fuzz --remap])
    need reproducible "a designer touched one node" perturbations: flip
    a node's kind, or rewire one of its fanins to another signal.  The
    edit goes through {!Unate.Unetwork.with_structure}, so the result
    is renormalised (constants folded, hash-consed, swept) exactly like
    any other mapper input — an edit may therefore ripple (the touched
    cone and every cone above it change their deep signatures) or even
    vanish (the renormaliser folds it away), and both are valid remap
    test cases.  Everything is a pure function of [(u, seed)]. *)

val apply : seed:int -> Unate.Unetwork.t -> Unate.Unetwork.t
(** [apply ~seed u] applies one random local edit to [u].  Networks
    with no internal nodes are returned unchanged. *)

val describe : seed:int -> Unate.Unetwork.t -> string
(** The edit [apply ~seed u] would perform, for failure reports
    (e.g. ["flip-kind node 17"]). *)
