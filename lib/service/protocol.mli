(** The soimapd wire protocol: newline-delimited JSON frames.

    One request per line, one response per line, over a Unix-domain or
    TCP stream socket.  Both sides reuse the dependency-free {!Obs.Json}
    reader; a malformed line yields an [error] response and the stream
    resynchronises at the next newline.  Every response echoes the
    request's [id].

    Request shape (all fields except [format]/[payload] optional):
    {v
    {"id":"r1", "op":"map", "format":"blif|bench|pla|suite",
     "payload":"...", "flow":"bulk|rs|soi", "cost":"area|depth|depth-bulk|<k>",
     "w_max":5, "h_max":8, "rewrite":0,
     "timeout":2.5, "max_tuples":100000, "max_bdd_nodes":100000,
     "on_exhaust":"degrade|fail", "dump":false, "delay_ms":0}
    v}
    [op] is ["map"] (default), ["remap"], ["ping"], ["stats"], or
    ["expose"] (OpenMetrics text in the response's [body]).  [delay_ms]
    is a chaos-drill aid: the server sleeps that long (clamped by
    policy) before mapping, simulating a slow downstream stage.

    A ["remap"] request carries every map field plus ["base"]: the
    pre-edit circuit in the same [format].  The server keeps one warm
    baseline state keyed by (base, format, flow, cost, bounds): a miss
    maps the base through the shared warm memo, and every further remap
    against the same base fingerprints the payload against the state —
    re-pricing only the cones dirty relative to the {e previous} remap
    of the loop (an unchanged payload answers from the whole-network
    fast path) — then answers with the normal mapped response plus a
    ["remap"] member [{"nodes":N,"dirty":N,"clean":N}].  Results are
    byte-identical to a cold map of the payload either way.  [rewrite]
    is rejected for remap requests (the portfolio has no warm path).

    Any request may carry a ["trace_id"]: a client-chosen correlation
    token echoed verbatim in the response.  When the request omits it
    and the server is tracing, the server assigns one (and still echoes
    it), so every span tree in the server's trace file is nameable from
    either side.

    Response statuses: [ok], [degraded] (budget tripped, greedy fallback
    mapped), [failed] (budget tripped under [on_exhaust:"fail"], or the
    payload did not parse), [rejected] (admission control; carries
    [retry_after_ms]), [error] (malformed or invalid frame).  See
    docs/service.md for the full catalogue. *)

type addr = Unix_sock of string | Tcp of string * int

val addr_of_string : string -> (addr, string) result
(** Parses ["unix:PATH"] or ["tcp:HOST:PORT"] (empty host means
    127.0.0.1). *)

val addr_to_string : addr -> string

(** {1 Requests} *)

type format = Blif | Bench_fmt | Pla | Suite

type map_params = {
  format : format;
  payload : string;  (** circuit text, or the suite benchmark name *)
  flow : Mapper.Algorithms.flow;
  cost : Mapper.Cost.model;
  w_max : int;
  h_max : int;
  rewrite : int;
  timeout : float option;  (** client-requested; clamped by server policy *)
  max_tuples : int option;
  max_bdd_nodes : int option;
  on_exhaust : [ `Degrade | `Fail ];
  dump : bool;  (** include the canonical circuit dump in the response *)
  delay_ms : int;  (** drill aid: pre-mapping sleep, clamped by policy *)
}

type body =
  | Ping
  | Stats
  | Expose
  | Map of map_params
  | Remap of { base : string; params : map_params }
      (** incremental remap: [base] is the pre-edit circuit text in
          [params.format]; [params.payload] the edited one *)

type request = {
  id : string;
  trace_id : string option;  (** client correlation token, echoed back *)
  body : body;
}

val parse_request : string -> (request, string) result
(** Total: malformed JSON, unknown fields values, and nonsensical budget
    limits (the same {!Resilience.Budget.validate} rules as the CLI
    flags) come back as [Error msg], never an exception. *)

val format_of_string : string -> (format, string) result
val flow_of_string : string -> (Mapper.Algorithms.flow, string) result
val cost_of_string : string -> (Mapper.Cost.model, string) result

(** {1 Responses}

    Every renderer takes an optional [trace_id]; when given, the
    response carries a ["trace_id"] member right after ["id"]. *)

val render_error : ?trace_id:string -> id:string -> string -> string

val render_rejected :
  ?trace_id:string ->
  id:string ->
  reason:string ->
  queue_depth:int ->
  retry_after_ms:int ->
  unit ->
  string

val render_failed :
  ?trace_id:string -> id:string -> elapsed_ms:float -> string -> string

type remap_summary = { rs_nodes : int; rs_dirty : int; rs_clean : int }
(** The fingerprint verdict attached to a remap response: total nodes in
    the edited network, and how many were dirty (re-priced) vs clean
    (warm memo splices). *)

val render_mapped :
  ?trace_id:string ->
  ?remap:remap_summary ->
  id:string ->
  status:string ->
  counts:Domino.Circuit.counts ->
  degradations:string list ->
  elapsed_ms:float ->
  dump:string option ->
  unit ->
  string

val render_pong : ?trace_id:string -> id:string -> unit -> string

val render_stats :
  ?trace_id:string ->
  ?metrics:Obs.Metrics.family list ->
  ?gauges:(string * int) list ->
  id:string ->
  (string * int) list ->
  string
(** [render_stats ~id totals] keeps the flat ["service"] object of int
    totals — the compat shape existing consumers parse.  [gauges] adds
    a ["gauges"] object of live point-in-time values (queue depth,
    in-flight count); [metrics] adds a ["metrics"] array with the full
    typed registry: histograms ship [bounds]/[counts]/[sum] intact
    instead of being flattened lossily. *)

val render_expose : ?trace_id:string -> id:string -> string -> string
(** The [expose] response: OpenMetrics exposition text in ["body"]. *)

val response_status : Obs.Json.t -> (string, string) result
(** The [status] member of a decoded response. *)

val response_trace_id : Obs.Json.t -> string option
(** The echoed ["trace_id"] member, when present. *)

val json_escape : string -> string
(** JSON string-body escaping (shared with the CLI's stats printer). *)
