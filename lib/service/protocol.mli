(** The soimapd wire protocol: newline-delimited JSON frames.

    One request per line, one response per line, over a Unix-domain or
    TCP stream socket.  Both sides reuse the dependency-free {!Obs.Json}
    reader; a malformed line yields an [error] response and the stream
    resynchronises at the next newline.  Every response echoes the
    request's [id].

    Request shape (all fields except [format]/[payload] optional):
    {v
    {"id":"r1", "op":"map", "format":"blif|bench|pla|suite",
     "payload":"...", "flow":"bulk|rs|soi", "cost":"area|depth|depth-bulk|<k>",
     "w_max":5, "h_max":8, "rewrite":0,
     "timeout":2.5, "max_tuples":100000, "max_bdd_nodes":100000,
     "on_exhaust":"degrade|fail", "dump":false, "delay_ms":0}
    v}
    [op] is ["map"] (default), ["ping"], or ["stats"].  [delay_ms] is a
    chaos-drill aid: the server sleeps that long (clamped by policy)
    before mapping, simulating a slow downstream stage.

    Response statuses: [ok], [degraded] (budget tripped, greedy fallback
    mapped), [failed] (budget tripped under [on_exhaust:"fail"], or the
    payload did not parse), [rejected] (admission control; carries
    [retry_after_ms]), [error] (malformed or invalid frame).  See
    docs/service.md for the full catalogue. *)

type addr = Unix_sock of string | Tcp of string * int

val addr_of_string : string -> (addr, string) result
(** Parses ["unix:PATH"] or ["tcp:HOST:PORT"] (empty host means
    127.0.0.1). *)

val addr_to_string : addr -> string

(** {1 Requests} *)

type format = Blif | Bench_fmt | Pla | Suite

type map_params = {
  format : format;
  payload : string;  (** circuit text, or the suite benchmark name *)
  flow : Mapper.Algorithms.flow;
  cost : Mapper.Cost.model;
  w_max : int;
  h_max : int;
  rewrite : int;
  timeout : float option;  (** client-requested; clamped by server policy *)
  max_tuples : int option;
  max_bdd_nodes : int option;
  on_exhaust : [ `Degrade | `Fail ];
  dump : bool;  (** include the canonical circuit dump in the response *)
  delay_ms : int;  (** drill aid: pre-mapping sleep, clamped by policy *)
}

type body = Ping | Stats | Map of map_params

type request = { id : string; body : body }

val parse_request : string -> (request, string) result
(** Total: malformed JSON, unknown fields values, and nonsensical budget
    limits (the same {!Resilience.Budget.validate} rules as the CLI
    flags) come back as [Error msg], never an exception. *)

val format_of_string : string -> (format, string) result
val flow_of_string : string -> (Mapper.Algorithms.flow, string) result
val cost_of_string : string -> (Mapper.Cost.model, string) result

(** {1 Responses} *)

val render_error : id:string -> string -> string
val render_rejected :
  id:string -> reason:string -> queue_depth:int -> retry_after_ms:int -> string

val render_failed : id:string -> elapsed_ms:float -> string -> string

val render_mapped :
  id:string ->
  status:string ->
  counts:Domino.Circuit.counts ->
  degradations:string list ->
  elapsed_ms:float ->
  dump:string option ->
  string

val render_pong : id:string -> string
val render_stats : id:string -> (string * int) list -> string

val response_status : Obs.Json.t -> (string, string) result
(** The [status] member of a decoded response. *)

val json_escape : string -> string
(** JSON string-body escaping (shared with the CLI's stats printer). *)
