(** The soimapd daemon core: admission control, shared-pool execution,
    warm shared cache, graceful drain.

    One {!t} is one daemon: a listener (Unix or TCP, {!Protocol.addr}),
    a reader thread per connection (bounded by [max_connections], with
    read/write timeouts and a max-request-size), a bounded admission
    queue, and [dispatchers] threads that batch queued requests onto the
    shared {!Parallel.Pool}.  All requests share one warm {!Mapper.Memo}
    table; with [cache_file] set, a janitor thread persists it
    atomically every [cache_interval] seconds and again at drain.

    {b Isolation.}  A request that trips its budget, fails to parse, or
    hits a raising cone produces a [failed] response on its own
    connection; nothing else is affected — no exception ever crosses a
    job boundary onto the pool.

    {b Ledger.}  [requests = ok + degraded + failed + rejected] holds at
    every instant: a request is counted together with its outcome, under
    one lock, at response time.  Frames that never became an admitted
    request (malformed JSON, invalid limits, oversized) count as
    [errors].  {!Check.Chaos.daemon_storm} asserts the balance against a
    live daemon.

    {b Drain.}  {!request_stop} is async-signal-safe (a single atomic
    store) — call it from SIGTERM/SIGINT handlers.  {!run} then stops
    accepting, closes the listener (and unlinks a Unix socket path),
    lets queued and in-flight work finish until [drain_timeout] (later
    queued jobs are failed with ["draining"], never silently dropped),
    wakes and joins every thread, saves the cache, and returns
    [Ok ()]. *)

type config = {
  addr : Protocol.addr;
  max_connections : int;  (** readers; excess connects get one [rejected] line *)
  queue_depth : int;  (** admission bound; beyond it: [rejected]/overloaded *)
  dispatchers : int;  (** threads batching jobs onto the shared pool *)
  batch_max : int;  (** max jobs dispatched as one pool batch *)
  max_request_bytes : int;  (** a longer frame is an error; connection closes *)
  io_timeout : float;  (** per-connection SO_RCVTIMEO / SO_SNDTIMEO, seconds *)
  drain_timeout : float;  (** grace for queued work after {!request_stop} *)
  default_timeout : float;  (** budget timeout when the client sends none *)
  max_timeout : float;  (** client timeouts are clamped to this *)
  max_tuples_cap : int option;  (** policy cap; min'd with the client's *)
  max_bdd_nodes_cap : int option;
  max_delay_ms : int;  (** clamp on the drill-aid [delay_ms] field *)
  cache_file : string option;
  cache_interval : float;  (** seconds between janitor cache saves *)
  stats_addr : Protocol.addr option;
      (** side listener serving OpenMetrics over HTTP/1.0 — a scraping
          outage and a mapping outage can't cause each other *)
  flight_file : string option;
      (** where flight-recorder dumps go: written at drain, on the
          first [failed] outcome, and on {!request_flight_dump} *)
}

val default_config : addr:Protocol.addr -> config
(** 64 connections, queue 64, 2 dispatchers, batches of 8, 1 MiB frames,
    10 s I/O timeouts, 10 s drain, budgets default 30 s / max 60 s,
    no tuple/BDD caps, 1 s delay clamp, no cache, 60 s cache interval,
    no stats listener, no flight file. *)

type t

val create : ?memo:Mapper.Memo.t -> config -> t
(** [create cfg] builds a daemon (not yet listening).  Pass [memo] to
    share a pre-warmed table (e.g. loaded from [--cache]); otherwise a
    fresh one is created. *)

val run : t -> (unit, string) result
(** Binds, listens and serves until {!request_stop}; then drains and
    returns [Ok ()].  [Error msg] means startup failed (address in use
    by a live daemon, permission denied, bad host) — nothing was
    served.  A stale Unix socket file (bind succeeds nowhere but
    connecting to it is refused) is unlinked and rebound.  Installs
    [Signal_ignore] for SIGPIPE. *)

val request_stop : t -> unit
(** Begin graceful drain.  Async-signal-safe: one [Atomic.set], no
    locks, no allocation beyond the closure — safe inside
    [Sys.set_signal] handlers. *)

val request_flight_dump : t -> unit
(** Ask the running daemon to dump the flight recorder to
    [flight_file] at its next maintenance tick (≤ 0.2 s).
    Async-signal-safe like {!request_stop} — the SIGQUIT handler's
    tool.  A no-op when no [flight_file] is configured. *)

val listening : t -> bool
(** True once {!run} has bound and listens; false again at drain.  Lets
    tests and the CLI wait for readiness. *)

val memo : t -> Mapper.Memo.t
(** The shared memo table (for saving or inspection after {!run}). *)

val totals : t -> (string * int) list
(** A consistent snapshot of the service ledger, in render order:
    [requests], [ok], [degraded], [failed], [rejected], [errors],
    [disconnects], [connections], [conn_rejected], [queue_depth],
    [queue_peak], [latency_max_ms], [inflight].  Taken under the ledger
    lock, so
    [requests = ok + degraded + failed + rejected] in every snapshot.
    Outcomes are ledgered {e before} their response is written, so any
    response a client has already received is reflected in the next
    snapshot it takes.
    The same numbers are mirrored into {!Obs.Metrics} as [service.*]
    counters (unstable). *)
