(* soimapd: the mapping-as-a-service daemon core.

   Composition, not invention: requests ride the shared work-stealing
   {!Parallel.Pool}, per-request limits become {!Resilience.Budget}
   allowances (clamped by server policy so a client can never buy an
   unbounded mapping), all clients share one warm {!Mapper.Memo} table,
   and the ledger/latency surface mirrors into {!Obs.Metrics}.

   Robustness is the architecture:

   - {b Admission control.}  A bounded queue between connection readers
     and the dispatchers; once full, a map request is answered
     [rejected/overloaded] immediately (with a retry hint) instead of
     queueing without bound.  [ping]/[stats] bypass admission so the
     daemon stays observable under overload.
   - {b Bounded I/O.}  Every connection has read/write timeouts and a
     max-request-size: a slow, silent or fire-hosing client costs one
     reader thread for at most one timeout, never a worker.
   - {b Request isolation.}  A job that trips its budget or raises
     returns a [failed] response to its own client; the worker, the
     batch it rode in, and every other request proceed.  No exception
     crosses a job boundary (a raising pool task would cancel its
     batch siblings).
   - {b Graceful drain.}  SIGTERM/SIGINT (via {!request_stop}) stops
     accepting, lets in-flight and queued work finish until the drain
     deadline (queued jobs past it are failed, never dropped silently),
     flushes the cache and metrics, and {!run} returns [Ok ()] — exit 0.

   Ledger invariant: [requests = ok + degraded + failed + rejected],
   exactly, at every instant — a response's outcome counter and the
   request counter are bumped together under the server mutex.  Frames
   that never became an admitted request (malformed, oversized, invalid
   limits) are counted in [errors] instead.  The chaos drill
   ({!Check.Chaos.daemon_storm}) storms a live daemon and asserts this
   balance through the [stats] op. *)

type config = {
  addr : Protocol.addr;
  max_connections : int;
  queue_depth : int;
  dispatchers : int;
  batch_max : int;
  max_request_bytes : int;
  io_timeout : float;
  drain_timeout : float;
  default_timeout : float;
  max_timeout : float;
  max_tuples_cap : int option;
  max_bdd_nodes_cap : int option;
  max_delay_ms : int;
  cache_file : string option;
  cache_interval : float;
  stats_addr : Protocol.addr option;
  flight_file : string option;
}

let default_config ~addr =
  {
    addr;
    max_connections = 64;
    queue_depth = 64;
    dispatchers = 2;
    batch_max = 8;
    max_request_bytes = 1 lsl 20;
    io_timeout = 10.0;
    drain_timeout = 10.0;
    default_timeout = 30.0;
    max_timeout = 60.0;
    max_tuples_cap = None;
    max_bdd_nodes_cap = None;
    max_delay_ms = 1000;
    cache_file = None;
    cache_interval = 60.0;
    stats_addr = None;
    flight_file = None;
  }

(* ---------------- metrics mirrors ---------------- *)

(* Traffic-shaped, so all unstable.  The internal totals below are the
   authoritative ledger (always on, mutex-consistent); these mirrors
   exist so `soimap --serve --stats` exposes the same numbers through
   the standard observability surface. *)
let m_requests = Obs.Metrics.counter ~stable:false "service.requests"
let m_ok = Obs.Metrics.counter ~stable:false "service.ok"
let m_degraded = Obs.Metrics.counter ~stable:false "service.degraded"
let m_failed = Obs.Metrics.counter ~stable:false "service.failed"
let m_rejected = Obs.Metrics.counter ~stable:false "service.rejected"
let m_errors = Obs.Metrics.counter ~stable:false "service.errors"
let m_disconnects = Obs.Metrics.counter ~stable:false "service.disconnects"
let m_connections = Obs.Metrics.counter ~stable:false "service.connections"
let m_conn_rejected = Obs.Metrics.counter ~stable:false "service.conn_rejected"
let m_queue_peak = Obs.Metrics.gauge_max ~stable:false "service.queue_peak"
let m_bytes_in = Obs.Metrics.counter ~stable:false "service.bytes_in"
let m_bytes_out = Obs.Metrics.counter ~stable:false "service.bytes_out"

(* Per-outcome latency histograms, log-bucketed in nanoseconds (1 µs to
   10 s on the 1-2-5 grid): an operator asking "what does a degraded
   request cost?" reads one family instead of subtracting mixtures.
   Quantiles come out via [Metrics.quantile] on the exposed buckets. *)
let latency_buckets = Obs.Metrics.log_buckets ~lo:1_000 ~hi:10_000_000_000

let m_latency_of_class cls =
  Obs.Metrics.histogram ~stable:false ~buckets:latency_buckets
    ("service.latency_ns." ^ cls)

let m_latency_ok = m_latency_of_class "ok"
let m_latency_degraded = m_latency_of_class "degraded"
let m_latency_failed = m_latency_of_class "failed"
let m_latency_rejected = m_latency_of_class "rejected"

(* Per-request GC attribution: [Gcstats.snap]/[delta] on the executing
   domain, accumulated here — the daemon's answer to "which traffic is
   allocating?". *)
let m_gc_minor = Obs.Metrics.counter ~stable:false "service.gc.minor_words"
let m_gc_promoted = Obs.Metrics.counter ~stable:false "service.gc.promoted_words"
let m_gc_major = Obs.Metrics.counter ~stable:false "service.gc.major_words"
let m_gc_minor_coll =
  Obs.Metrics.counter ~stable:false "service.gc.minor_collections"
let m_gc_major_coll =
  Obs.Metrics.counter ~stable:false "service.gc.major_collections"

(* ---------------- connections ---------------- *)

type conn = {
  fd : Unix.file_descr;
  cid : int;
  wmutex : Mutex.t;  (* serialises response lines on this socket *)
  mutable pending : int;  (* queued/in-flight jobs that will write here *)
  mutable closing : bool;  (* reader done; close once pending drains *)
  mutable dead : bool;  (* a write failed; don't try again *)
  mutable closed : bool;
}

type job = {
  req_id : string;
  trace_id : string option;
  params : Protocol.map_params;
  base : string option;  (* remap op: the pre-edit circuit text *)
  jconn : conn;
  t_enq : int64;
}

type t = {
  cfg : config;
  memo : Mapper.Memo.t;
  stop : bool Atomic.t;
  listening : bool Atomic.t;
  m : Mutex.t;
  jobs_cond : Condition.t;
  queue : job Queue.t;
  mutable stopping : bool;  (* mutex-held mirror of [stop], wakes waiters *)
  mutable drain_deadline : int64;
  mutable conns : conn list;
  mutable next_cid : int;
  (* the ledger (guarded by [m]) *)
  mutable c_requests : int;
  mutable c_ok : int;
  mutable c_degraded : int;
  mutable c_failed : int;
  mutable c_rejected : int;
  mutable c_errors : int;
  mutable c_disconnects : int;
  mutable c_connections : int;
  mutable c_conn_rejected : int;
  mutable c_queue_peak : int;
  mutable c_latency_max_ms : int;
  mutable c_inflight : int;  (* jobs currently executing on the pool *)
  next_trace : int Atomic.t;  (* server-assigned trace-id counter *)
  flight_dumped : bool Atomic.t;  (* first-failure auto-dump latch *)
  flight_wanted : bool Atomic.t;  (* SIGQUIT-style on-demand dump *)
  (* Warm remap baseline: the state of the last base mapped by a remap
     request, keyed by everything that determines it (base text, format,
     flow, cost model, bounds).  A steady stream of remaps against one
     base — the edit/remap loop the op exists for — skips re-mapping the
     base entirely and hits [Engine.remap]'s whole-network fast path.
     The state is mutable, so same-base requests serialise on
     [remap_lock]; map requests are unaffected. *)
  remap_lock : Mutex.t;
  mutable remap_cache : (string * Mapper.Engine.remap_state) option;
}

let create ?memo cfg =
  {
    cfg;
    memo = (match memo with Some m -> m | None -> Mapper.Memo.create ());
    stop = Atomic.make false;
    listening = Atomic.make false;
    m = Mutex.create ();
    jobs_cond = Condition.create ();
    queue = Queue.create ();
    stopping = false;
    drain_deadline = 0L;
    conns = [];
    next_cid = 0;
    c_requests = 0;
    c_ok = 0;
    c_degraded = 0;
    c_failed = 0;
    c_rejected = 0;
    c_errors = 0;
    c_disconnects = 0;
    c_connections = 0;
    c_conn_rejected = 0;
    c_queue_peak = 0;
    c_latency_max_ms = 0;
    c_inflight = 0;
    next_trace = Atomic.make 0;
    flight_dumped = Atomic.make false;
    flight_wanted = Atomic.make false;
    remap_lock = Mutex.create ();
    remap_cache = None;
  }

let memo t = t.memo
let request_stop t = Atomic.set t.stop true
let listening t = Atomic.get t.listening

let request_flight_dump t = Atomic.set t.flight_wanted true

(* The daemon's trace ids: a client that sent none still gets a
   correlation token it can quote back to the operator.  Only minted
   while tracing, so the tracing-off hot path never allocates one. *)
let assign_trace_id t req_trace_id =
  match req_trace_id with
  | Some _ as tid -> tid
  | None ->
      if Obs.Trace.enabled () then
        Some (Printf.sprintf "s-%d" (Atomic.fetch_and_add t.next_trace 1))
      else None

let flight_dump_now t ~why =
  match t.cfg.flight_file with
  | None -> ()
  | Some file -> (
      Obs.Flight.record ~detail:why "dump";
      match Obs.Flight.write_file file with
      | Ok () -> ()
      | Error msg ->
          Printf.eprintf "soimapd: flight dump %s: %s\n%!" file msg)

(* The first failed request triggers one automatic dump: the ring then
   still holds the events leading up to it, which is exactly the window
   an operator wants on file before it scrolls away. *)
let flight_on_failure t =
  if
    t.cfg.flight_file <> None
    && not (Atomic.exchange t.flight_dumped true)
  then flight_dump_now t ~why:"first-failure"

let locked t f =
  Mutex.lock t.m;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.m) f

let totals t =
  locked t (fun () ->
      [
        ("requests", t.c_requests);
        ("ok", t.c_ok);
        ("degraded", t.c_degraded);
        ("failed", t.c_failed);
        ("rejected", t.c_rejected);
        ("errors", t.c_errors);
        ("disconnects", t.c_disconnects);
        ("connections", t.c_connections);
        ("conn_rejected", t.c_conn_rejected);
        ("queue_depth", Queue.length t.queue);
        ("queue_peak", t.c_queue_peak);
        ("latency_max_ms", t.c_latency_max_ms);
        ("inflight", t.c_inflight);
      ])

(* Live point-in-time gauges for the stats op and the OpenMetrics
   listener: these are *current* values, not aggregates, so they live
   in the ledger rather than the (max/sum-shaped) metrics registry. *)
let live_gauges t =
  locked t (fun () ->
      [
        ("service_queue_depth", Queue.length t.queue);
        ("service_inflight", t.c_inflight);
        ("service_connections_open", List.length t.conns);
      ])

(* ---------------- socket helpers ---------------- *)

(* Writes go through one code path: serialised per connection, bounded
   by SO_SNDTIMEO, and a failure (EPIPE from a mid-request disconnect,
   a timeout against a stuffed socket) marks the connection dead and is
   counted — it never raises into a pool task or reader. *)
let write_line t conn line =
  Mutex.lock conn.wmutex;
  let newly_dead = ref false in
  let ok =
    if conn.dead || conn.closed then false
    else begin
      let data = line ^ "\n" in
      let len = String.length data in
      match
        let off = ref 0 in
        while !off < len do
          off :=
            !off + Unix.write_substring conn.fd data !off (len - !off)
        done
      with
      | () ->
          Obs.Metrics.add m_bytes_out len;
          true
      | exception Unix.Unix_error _ ->
          conn.dead <- true;
          newly_dead := true;
          false
    end
  in
  Mutex.unlock conn.wmutex;
  if !newly_dead then begin
    locked t (fun () -> t.c_disconnects <- t.c_disconnects + 1);
    Obs.Metrics.incr m_disconnects
  end;
  ok

let close_fd fd =
  (try Unix.shutdown fd Unix.SHUTDOWN_ALL with Unix.Unix_error _ -> ());
  try Unix.close fd with Unix.Unix_error _ -> ()

(* Close the socket once nothing will write to it anymore.  Readers call
   this with [conn.closing] set; jobs call it as they release their
   reference. *)
let conn_maybe_close conn =
  Mutex.lock conn.wmutex;
  let do_close = conn.closing && conn.pending = 0 && not conn.closed in
  if do_close then conn.closed <- true;
  Mutex.unlock conn.wmutex;
  if do_close then close_fd conn.fd

let conn_release conn =
  Mutex.lock conn.wmutex;
  conn.pending <- conn.pending - 1;
  Mutex.unlock conn.wmutex;
  conn_maybe_close conn

(* ---------------- request execution ---------------- *)

exception Payload_error of string

let network_of_payload (p : Protocol.map_params) =
  match p.format with
  | Protocol.Blif -> (
      try Blif.parse_string p.payload
      with Blif.Parse_error (line, msg) ->
        raise (Payload_error (Printf.sprintf "blif:%d: %s" line msg)))
  | Protocol.Bench_fmt -> (
      try Bench_format.parse_string p.payload
      with Bench_format.Parse_error (line, msg) ->
        raise (Payload_error (Printf.sprintf "bench:%d: %s" line msg)))
  | Protocol.Pla -> (
      try Pla.to_network (Pla.parse_string p.payload)
      with Pla.Parse_error (line, msg) ->
        raise (Payload_error (Printf.sprintf "pla:%d: %s" line msg)))
  | Protocol.Suite -> (
      let in_extras () =
        List.find_opt
          (fun e -> e.Gen.Suite.name = p.payload)
          Gen.Suite.extras
      in
      match (Gen.Suite.find p.payload, in_extras ()) with
      | Some e, _ | None, Some e -> e.Gen.Suite.build ()
      | None, None ->
          raise (Payload_error ("unknown suite benchmark: " ^ p.payload)))

(* Client-supplied limits clamped by server policy: the effective
   timeout is always finite (policy default when the client sent none,
   policy max otherwise), so no request can hold a worker forever; the
   tuple/BDD caps take the tighter of client wish and policy cap. *)
let effective_budget cfg (p : Protocol.map_params) =
  let timeout =
    Float.min (Option.value p.timeout ~default:cfg.default_timeout)
      cfg.max_timeout
  in
  let tighter client cap =
    match (client, cap) with
    | Some a, Some b -> Some (min a b)
    | Some a, None -> Some a
    | None, c -> c
  in
  Resilience.Budget.make ~timeout
    ?max_tuples:(tighter p.max_tuples cfg.max_tuples_cap)
    ?max_bdd_nodes:(tighter p.max_bdd_nodes cfg.max_bdd_nodes_cap)
    ()

type job_outcome = Ok_ | Degraded_ | Failed_

(* One admitted request, start to finish, on a pool domain.  Total: any
   escape (payload parse error, a raising mapper bug, a chaos site)
   becomes a [failed] response — an exception here would cancel the
   sibling requests sharing the batch.

   Observability happens here too: the GC snapshot pair brackets the
   mapping on the executing domain (so [service.gc.*] attributes
   allocation to requests, not to the process), and when tracing is on
   the request's whole span tree — admission-to-respond parent with
   queue/map/respond children — is synthesized from the timestamps and
   emitted on this domain's track, tagged with the trace id. *)
let run_job t job =
  let cfg = t.cfg in
  let p = job.params in
  let tid = job.trace_id in
  let t_start = Obs.Clock.now_ns () in
  locked t (fun () -> t.c_inflight <- t.c_inflight + 1);
  let gc0 = Obs.Gcstats.snap () in
  let elapsed () = Obs.Clock.ns_to_ms (Int64.sub (Obs.Clock.now_ns ()) job.t_enq) in
  (* The remap op's fingerprint verdict, set by the remap branch below
     and attached to its (always [Ok_]) mapped response. *)
  let remap_info = ref None in
  let outcome, detail, line =
    match
      (if p.Protocol.delay_ms > 0 then
         Unix.sleepf
           (float_of_int (min p.Protocol.delay_ms cfg.max_delay_ms) /. 1000.));
      let net = network_of_payload p in
      let budget = effective_budget cfg p in
      match job.base with
      | None ->
          Mapper.Algorithms.run_outcome ~budget ~memo:t.memo
            ~on_exhaust:p.Protocol.on_exhaust ~cost:p.Protocol.cost
            ~w_max:p.Protocol.w_max ~h_max:p.Protocol.h_max
            ~rewrite:p.Protocol.rewrite p.Protocol.flow net
      | Some base ->
          (* Incremental remap: fingerprint the payload against a warm
             baseline state, re-pricing only the dirty cones.  The
             baseline is cached across requests keyed by everything
             that determines it, so the steady state — many remaps of
             edited payloads against one base — never re-maps the base;
             a cache miss maps it through the shared warm memo.  Budget
             trips surface as [failed] through the handlers below (no
             greedy fallback: a degraded remap would not be
             byte-faithful to a cold map). *)
          let u1 = Mapper.Algorithms.prepare net in
          let key =
            Marshal.to_string
              ( base,
                p.Protocol.format,
                p.Protocol.flow,
                p.Protocol.cost,
                p.Protocol.w_max,
                p.Protocol.h_max )
              []
          in
          let circuit, stats, info =
            Mutex.lock t.remap_lock;
            Fun.protect
              ~finally:(fun () -> Mutex.unlock t.remap_lock)
              (fun () ->
                let st =
                  match t.remap_cache with
                  | Some (k, st) when String.equal k key -> st
                  | _ ->
                      let base_net =
                        network_of_payload { p with Protocol.payload = base }
                      in
                      let u0 = Mapper.Algorithms.prepare base_net in
                      let opts =
                        Mapper.Algorithms.options_of ~cost:p.Protocol.cost
                          ~w_max:p.Protocol.w_max ~h_max:p.Protocol.h_max
                          ~both_orders:true ~grounded_at_foot:true
                          ~pareto_width:1 p.Protocol.flow
                      in
                      let st, _ =
                        Mapper.Engine.remap_init ~budget ~memo:t.memo opts u0
                      in
                      t.remap_cache <- Some (key, st);
                      st
                in
                Mapper.Engine.remap ~budget st u1)
          in
          let circuit = Mapper.Algorithms.postprocess p.Protocol.flow circuit in
          remap_info :=
            Some
              {
                Protocol.rs_nodes = Unate.Unetwork.node_count u1;
                rs_dirty = info.Mapper.Engine.dirty_cones;
                rs_clean = info.Mapper.Engine.clean_cones;
              };
          Resilience.Outcome.Ok
            {
              Mapper.Algorithms.circuit;
              counts = Domino.Circuit.counts circuit;
              unate = u1;
              mapped = u1;
              stats;
              rewrite = None;
            }
    with
    | Resilience.Outcome.Ok r ->
        ( Ok_,
          "",
          Protocol.render_mapped ?trace_id:tid ?remap:!remap_info
            ~id:job.req_id ~status:"ok" ~counts:r.Mapper.Algorithms.counts
            ~degradations:[] ~elapsed_ms:(elapsed ())
            ~dump:
              (if p.Protocol.dump then
                 Some (Domino.Circuit.dump r.Mapper.Algorithms.circuit)
               else None)
            () )
    | Resilience.Outcome.Degraded (r, ds) ->
        let ds = List.map Resilience.Outcome.describe_degradation ds in
        ( Degraded_,
          String.concat "; " ds,
          Protocol.render_mapped ?trace_id:tid ~id:job.req_id
            ~status:"degraded" ~counts:r.Mapper.Algorithms.counts
            ~degradations:ds ~elapsed_ms:(elapsed ())
            ~dump:
              (if p.Protocol.dump then
                 Some (Domino.Circuit.dump r.Mapper.Algorithms.circuit)
               else None)
            () )
    | Resilience.Outcome.Failed reason ->
        let msg = Resilience.Budget.reason_to_string reason in
        ( Failed_,
          msg,
          Protocol.render_failed ?trace_id:tid ~id:job.req_id
            ~elapsed_ms:(elapsed ()) msg )
    | exception Payload_error msg ->
        ( Failed_,
          "parse: " ^ msg,
          Protocol.render_failed ?trace_id:tid ~id:job.req_id
            ~elapsed_ms:(elapsed ()) ("parse: " ^ msg) )
    | exception Resilience.Budget.Exhausted reason ->
        let msg = Resilience.Budget.reason_to_string reason in
        ( Failed_,
          msg,
          Protocol.render_failed ?trace_id:tid ~id:job.req_id
            ~elapsed_ms:(elapsed ()) msg )
    | exception e ->
        let msg = "internal: " ^ Printexc.to_string e in
        ( Failed_,
          msg,
          Protocol.render_failed ?trace_id:tid ~id:job.req_id
            ~elapsed_ms:(elapsed ()) msg )
  in
  let gc = Obs.Gcstats.delta gc0 in
  Obs.Metrics.add m_gc_minor gc.Obs.Gcstats.minor_words;
  Obs.Metrics.add m_gc_promoted gc.Obs.Gcstats.promoted_words;
  Obs.Metrics.add m_gc_major gc.Obs.Gcstats.major_words;
  Obs.Metrics.add m_gc_minor_coll gc.Obs.Gcstats.minor_collections;
  Obs.Metrics.add m_gc_major_coll gc.Obs.Gcstats.major_collections;
  let t_done = Obs.Clock.now_ns () in
  (* Ledger before writing: once a client holds a response, the ledger
     already reflects it, so an immediately following `stats` (or the
     storm drill's over-the-wire balance check) can never observe the
     gap between a delivered outcome and its counters. *)
  let ms = int_of_float (elapsed ()) in
  locked t (fun () ->
      t.c_requests <- t.c_requests + 1;
      (match outcome with
      | Ok_ -> t.c_ok <- t.c_ok + 1
      | Degraded_ -> t.c_degraded <- t.c_degraded + 1
      | Failed_ -> t.c_failed <- t.c_failed + 1);
      if ms > t.c_latency_max_ms then t.c_latency_max_ms <- ms);
  Obs.Metrics.incr m_requests;
  (match outcome with
  | Ok_ -> Obs.Metrics.incr m_ok
  | Degraded_ ->
      Obs.Metrics.incr m_degraded;
      Obs.Flight.record ?id:tid ~detail "degrade"
  | Failed_ ->
      Obs.Metrics.incr m_failed;
      Obs.Flight.record ?id:tid ~detail "fail");
  ignore (write_line t job.jconn line);
  let t_wend = Obs.Clock.now_ns () in
  locked t (fun () -> t.c_inflight <- t.c_inflight - 1);
  let lat_ns = Int64.to_int (Int64.max 0L (Int64.sub t_wend job.t_enq)) in
  Obs.Metrics.observe
    (match outcome with
    | Ok_ -> m_latency_ok
    | Degraded_ -> m_latency_degraded
    | Failed_ -> m_latency_failed)
    lat_ns;
  if outcome = Failed_ then flight_on_failure t;
  if Obs.Trace.enabled () then begin
    let args =
      ("id", job.req_id)
      :: (match tid with None -> [] | Some x -> [ ("trace_id", x) ])
    in
    let status =
      match outcome with
      | Ok_ -> "ok"
      | Degraded_ -> "degraded"
      | Failed_ -> "failed"
    in
    let sub a b = Int64.max 0L (Int64.sub a b) in
    Obs.Trace.span_at ~cat:"service"
      ~args:(("status", status) :: args)
      ~ts:job.t_enq ~dur:(sub t_wend job.t_enq) "service.request";
    Obs.Trace.span_at ~cat:"service" ~args ~ts:job.t_enq
      ~dur:(sub t_start job.t_enq) "service.queue";
    Obs.Trace.span_at ~cat:"service" ~args ~ts:t_start
      ~dur:(sub t_done t_start) "service.map";
    Obs.Trace.span_at ~cat:"service" ~args ~ts:t_done
      ~dur:(sub t_wend t_done) "service.respond"
  end;
  conn_release job.jconn

(* Fail a job without mapping it (drain deadline passed). *)
let fail_job t job reason =
  let elapsed = Obs.Clock.ns_to_ms (Int64.sub (Obs.Clock.now_ns ()) job.t_enq) in
  locked t (fun () ->
      t.c_requests <- t.c_requests + 1;
      t.c_failed <- t.c_failed + 1);
  Obs.Metrics.incr m_requests;
  Obs.Metrics.incr m_failed;
  Obs.Flight.record ?id:job.trace_id ~detail:reason "drain_fail";
  ignore
    (write_line t job.jconn
       (Protocol.render_failed ?trace_id:job.trace_id ~id:job.req_id
          ~elapsed_ms:elapsed reason));
  Obs.Metrics.observe m_latency_failed
    (Int64.to_int
       (Int64.max 0L (Int64.sub (Obs.Clock.now_ns ()) job.t_enq)));
  conn_release job.jconn

(* ---------------- dispatchers ---------------- *)

(* A dispatcher collects whatever is queued (up to [batch_max]) and maps
   the batch on the shared pool: concurrent requests become one
   fork-join batch, several dispatchers keep batches overlapping.  The
   pool's first-failure cancellation is irrelevant here because
   [run_job] never raises. *)
let dispatcher_loop t =
  let rec loop () =
    Mutex.lock t.m;
    while Queue.is_empty t.queue && not t.stopping do
      Condition.wait t.jobs_cond t.m
    done;
    let past_drain =
      t.stopping && t.drain_deadline <> 0L
      && Int64.compare (Obs.Clock.now_ns ()) t.drain_deadline > 0
    in
    let batch = ref [] in
    let n = ref 0 in
    while (not (Queue.is_empty t.queue)) && !n < t.cfg.batch_max do
      batch := Queue.pop t.queue :: !batch;
      incr n
    done;
    let finished = Queue.is_empty t.queue && t.stopping in
    Mutex.unlock t.m;
    let batch = Array.of_list (List.rev !batch) in
    if past_drain then
      Array.iter (fun j -> fail_job t j "draining: server shutting down") batch
    else if Array.length batch > 0 then
      ignore (Parallel.Pool.map_default (fun j -> run_job t j) batch);
    if not (finished && Array.length batch = 0) then
      if finished then (
        (* drained this batch; check whether more arrived *)
        Mutex.lock t.m;
        let really_done = Queue.is_empty t.queue && t.stopping in
        Mutex.unlock t.m;
        if not really_done then loop ())
      else loop ()
  in
  loop ()

(* ---------------- connection readers ---------------- *)

type read_event = Line of string | Eof | Timeout | Oversized

(* Buffered line reader bounded in space ([max_request_bytes]) and time
   (SO_RCVTIMEO set at accept). *)
let read_next t conn buf =
  let chunk = Bytes.create 4096 in
  let find_line () =
    match String.index_opt (Buffer.contents buf) '\n' with
    | Some i ->
        let all = Buffer.contents buf in
        let line = String.sub all 0 i in
        Buffer.clear buf;
        Buffer.add_substring buf all (i + 1) (String.length all - i - 1);
        Some line
    | None -> None
  in
  let rec go () =
    match find_line () with
    | Some l -> Line l
    | None ->
        if Buffer.length buf > t.cfg.max_request_bytes then Oversized
        else begin
          match Unix.read conn.fd chunk 0 (Bytes.length chunk) with
          | 0 -> Eof
          | n ->
              Obs.Metrics.add m_bytes_in n;
              Buffer.add_subbytes buf chunk 0 n;
              go ()
          | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _)
            ->
              Timeout
          | exception Unix.Unix_error _ -> Eof
        end
  in
  go ()

let count_error t =
  locked t (fun () -> t.c_errors <- t.c_errors + 1);
  Obs.Metrics.incr m_errors

let count_disconnect t =
  locked t (fun () -> t.c_disconnects <- t.c_disconnects + 1);
  Obs.Metrics.incr m_disconnects

(* Admission decision for a parsed map request: bounded queue, explicit
   rejection once full (or once the server is draining). *)
let admit t conn ~trace_id ~t_recv ?base req_id params =
  Mutex.lock t.m;
  let depth = Queue.length t.queue in
  let decision =
    if t.stopping then `Reject ("draining", depth)
    else if depth >= t.cfg.queue_depth then `Reject ("overloaded", depth)
    else begin
      Mutex.lock conn.wmutex;
      conn.pending <- conn.pending + 1;
      Mutex.unlock conn.wmutex;
      Queue.push
        { req_id; trace_id; params; base; jconn = conn; t_enq = t_recv }
        t.queue;
      let d = Queue.length t.queue in
      if d > t.c_queue_peak then t.c_queue_peak <- d;
      Condition.signal t.jobs_cond;
      `Admitted d
    end
  in
  (match decision with
  | `Reject _ ->
      t.c_requests <- t.c_requests + 1;
      t.c_rejected <- t.c_rejected + 1
  | `Admitted _ -> ());
  Mutex.unlock t.m;
  match decision with
  | `Admitted d -> Obs.Metrics.observe_max m_queue_peak d
  | `Reject (reason, depth) ->
      Obs.Metrics.incr m_requests;
      Obs.Metrics.incr m_rejected;
      Obs.Flight.record ?id:trace_id ~detail:reason ~v:depth "reject";
      ignore
        (write_line t conn
           (Protocol.render_rejected ?trace_id ~id:req_id ~reason
              ~queue_depth:depth ~retry_after_ms:50 ()));
      let t_wend = Obs.Clock.now_ns () in
      Obs.Metrics.observe m_latency_rejected
        (Int64.to_int (Int64.max 0L (Int64.sub t_wend t_recv)));
      if Obs.Trace.enabled () then
        Obs.Trace.span_at ~cat:"service"
          ~args:
            (("id", req_id) :: ("status", "rejected")
            :: (match trace_id with None -> [] | Some x -> [ ("trace_id", x) ]))
          ~ts:t_recv
          ~dur:(Int64.max 0L (Int64.sub t_wend t_recv))
          "service.request"

let handle_line t conn line =
  let t_recv = Obs.Clock.now_ns () in
  match Protocol.parse_request line with
  | Error msg ->
      count_error t;
      Obs.Flight.record ~detail:msg "frame_error";
      (* Salvage the correlation tokens from an invalid-but-JSON frame
         (unknown op, bad limits): the error response still echoes
         id/trace_id, so the client can match it to what it sent. *)
      let id, trace_id =
        match Obs.Json.parse line with
        | Ok doc ->
            let s k = Option.bind (Obs.Json.member k doc) Obs.Json.to_string in
            ((match s "id" with Some i -> i | None -> ""), s "trace_id")
        | Error _ -> ("", None)
      in
      ignore (write_line t conn (Protocol.render_error ?trace_id ~id msg))
  | Ok { Protocol.id; trace_id; body = Protocol.Ping } ->
      let trace_id = assign_trace_id t trace_id in
      ignore (write_line t conn (Protocol.render_pong ?trace_id ~id ()))
  | Ok { Protocol.id; trace_id; body = Protocol.Stats } ->
      let trace_id = assign_trace_id t trace_id in
      let gauges = live_gauges t in
      ignore
        (write_line t conn
           (Protocol.render_stats ?trace_id
              ~metrics:(Obs.Metrics.families ())
              ~gauges ~id (totals t)))
  | Ok { Protocol.id; trace_id; body = Protocol.Expose } ->
      let trace_id = assign_trace_id t trace_id in
      let body = Obs.Expose.render ~extra_gauges:(live_gauges t) () in
      ignore (write_line t conn (Protocol.render_expose ?trace_id ~id body))
  | Ok { Protocol.id; trace_id; body = Protocol.Map p } ->
      let trace_id = assign_trace_id t trace_id in
      admit t conn ~trace_id ~t_recv id p
  | Ok { Protocol.id; trace_id; body = Protocol.Remap { base; params } } ->
      let trace_id = assign_trace_id t trace_id in
      admit t conn ~trace_id ~t_recv ~base id params

let reader_loop t conn =
  let buf = Buffer.create 512 in
  let rec loop () =
    if Atomic.get t.stop && Buffer.length buf = 0 then ()
    else
      match read_next t conn buf with
      | Line l ->
          if String.trim l <> "" then handle_line t conn l;
          loop ()
      | Eof -> if Buffer.length buf > 0 then count_disconnect t
      | Timeout ->
          (* Idle or stalled past SO_RCVTIMEO: a stalled mid-frame client
             is a disconnect-class event; an idle one just gets closed. *)
          if Buffer.length buf > 0 then count_disconnect t
      | Oversized ->
          count_error t;
          Obs.Flight.record ~v:t.cfg.max_request_bytes "frame_oversized";
          ignore
            (write_line t conn
               (Protocol.render_error ~id:""
                  (Printf.sprintf "request exceeds %d bytes"
                     t.cfg.max_request_bytes)))
  in
  loop ();
  Mutex.lock conn.wmutex;
  conn.closing <- true;
  Mutex.unlock conn.wmutex;
  conn_maybe_close conn;
  locked t (fun () ->
      t.conns <- List.filter (fun c -> c.cid <> conn.cid) t.conns)

(* ---------------- cache janitor ---------------- *)

let save_cache t =
  match t.cfg.cache_file with
  | None -> ()
  | Some file -> (
      match Mapper.Memo.save t.memo file with
      | Resilience.Outcome.Ok _ -> ()
      | Resilience.Outcome.Degraded (_, ds) ->
          List.iter
            (fun d ->
              Printf.eprintf "soimapd: cache %s: %s; not saved\n%!" file
                (Resilience.Budget.reason_to_string d.Resilience.Outcome.reason))
            ds
      | Resilience.Outcome.Failed reason ->
          Printf.eprintf "soimapd: cache %s: %s; not saved\n%!" file
            (Resilience.Budget.reason_to_string reason))

let janitor_loop t =
  let rec loop since =
    if Atomic.get t.stop then ()
    else begin
      Unix.sleepf 0.2;
      let since = since +. 0.2 in
      if since >= t.cfg.cache_interval then begin
        save_cache t;
        loop 0.0
      end
      else loop since
    end
  in
  loop 0.0

(* ---------------- listener ---------------- *)

let bind_listener addr =
  match addr with
  | Protocol.Tcp (host, port) -> (
      let inet =
        try (Unix.gethostbyname host).Unix.h_addr_list.(0)
        with Not_found | Invalid_argument _ ->
          Unix.inet_addr_of_string "127.0.0.1"
      in
      let sa = Unix.ADDR_INET (inet, port) in
      let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
      Unix.setsockopt fd Unix.SO_REUSEADDR true;
      match
        Unix.bind fd sa;
        Unix.listen fd 128
      with
      | () -> Ok fd
      | exception Unix.Unix_error (e, _, _) ->
          Unix.close fd;
          Error
            (Printf.sprintf "cannot listen on %s: %s"
               (Protocol.addr_to_string addr)
               (Unix.error_message e)))
  | Protocol.Unix_sock path -> (
      let sa = Unix.ADDR_UNIX path in
      let try_bind () =
        let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
        match
          Unix.bind fd sa;
          Unix.listen fd 128
        with
        | () -> Ok fd
        | exception Unix.Unix_error (e, _, _) ->
            Unix.close fd;
            Error e
      in
      match try_bind () with
      | Ok fd -> Ok fd
      | Error Unix.EADDRINUSE -> (
          (* A leftover socket file from a crashed daemon, or a live
             twin?  Probe it: connection refused means stale. *)
          let probe = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
          let stale =
            match Unix.connect probe sa with
            | () -> false
            | exception Unix.Unix_error (Unix.ECONNREFUSED, _, _) -> true
            | exception Unix.Unix_error _ -> true
          in
          Unix.close probe;
          if not stale then
            Error ("another daemon is live on " ^ path)
          else begin
            (try Unix.unlink path with Unix.Unix_error _ -> ());
            match try_bind () with
            | Ok fd -> Ok fd
            | Error e ->
                Error
                  (Printf.sprintf "cannot listen on %s: %s" path
                     (Unix.error_message e))
          end)
      | Error e ->
          Error
            (Printf.sprintf "cannot listen on %s: %s" path
               (Unix.error_message e)))

let accept_conn t lfd =
  match Unix.accept lfd with
  | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.EINTR), _, _)
    ->
      None
  | exception Unix.Unix_error _ -> None
  | fd, _peer ->
      (try Unix.setsockopt_float fd Unix.SO_RCVTIMEO t.cfg.io_timeout
       with Unix.Unix_error _ -> ());
      (try Unix.setsockopt_float fd Unix.SO_SNDTIMEO t.cfg.io_timeout
       with Unix.Unix_error _ -> ());
      let n = locked t (fun () -> List.length t.conns) in
      if n >= t.cfg.max_connections then begin
        locked t (fun () ->
            t.c_conn_rejected <- t.c_conn_rejected + 1);
        Obs.Metrics.incr m_conn_rejected;
        Obs.Flight.record ~detail:"too-many-connections" ~v:n "reject";
        let line =
          Protocol.render_rejected ~id:"" ~reason:"too-many-connections"
            ~queue_depth:0 ~retry_after_ms:200 ()
          ^ "\n"
        in
        (try ignore (Unix.write_substring fd line 0 (String.length line))
         with Unix.Unix_error _ -> ());
        close_fd fd;
        None
      end
      else begin
        let conn =
          locked t (fun () ->
              let cid = t.next_cid in
              t.next_cid <- cid + 1;
              t.c_connections <- t.c_connections + 1;
              let c =
                {
                  fd;
                  cid;
                  wmutex = Mutex.create ();
                  pending = 0;
                  closing = false;
                  dead = false;
                  closed = false;
                }
              in
              t.conns <- c :: t.conns;
              c)
        in
        Obs.Metrics.incr m_connections;
        Some conn
      end

(* ---------------- OpenMetrics side listener ---------------- *)

(* A deliberately tiny HTTP/1.0 responder on a separate address: every
   connection gets one OpenMetrics scrape and is closed.  Prometheus,
   curl and [soimap scrape] all speak this much HTTP; keeping it off
   the service socket means a scraping outage and a mapping outage
   cannot cause each other. *)
let stats_listener_loop t lfd =
  while not (Atomic.get t.stop) do
    match Unix.select [ lfd ] [] [] 0.2 with
    | [], _, _ -> ()
    | _ -> (
        match Unix.accept lfd with
        | exception Unix.Unix_error _ -> ()
        | fd, _peer ->
            (try Unix.setsockopt_float fd Unix.SO_RCVTIMEO 2.0
             with Unix.Unix_error _ -> ());
            (try Unix.setsockopt_float fd Unix.SO_SNDTIMEO 2.0
             with Unix.Unix_error _ -> ());
            (* Read (and ignore) the scraper's request line: the answer
               is the full exposition either way. *)
            (let buf = Bytes.create 4096 in
             try ignore (Unix.read fd buf 0 (Bytes.length buf))
             with Unix.Unix_error _ -> ());
            let body = Obs.Expose.render ~extra_gauges:(live_gauges t) () in
            let resp =
              Printf.sprintf
                "HTTP/1.0 200 OK\r\n\
                 Content-Type: text/plain; version=0.0.4\r\n\
                 Content-Length: %d\r\n\r\n%s"
                (String.length body) body
            in
            (try ignore (Unix.write_substring fd resp 0 (String.length resp))
             with Unix.Unix_error _ -> ());
            close_fd fd)
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
  done;
  close_fd lfd;
  match t.cfg.stats_addr with
  | Some (Protocol.Unix_sock path) -> (
      try Unix.unlink path with Unix.Unix_error _ -> ())
  | _ -> ()

(* ---------------- run ---------------- *)

let run t =
  (* A client vanishing mid-response must surface as EPIPE on the write,
     not kill the process. *)
  (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore with Invalid_argument _ -> ());
  match bind_listener t.cfg.addr with
  | Error msg -> Error msg
  | Ok lfd ->
      let stats_thread =
        match t.cfg.stats_addr with
        | None -> Ok None
        | Some addr -> (
            match bind_listener addr with
            | Error msg ->
                close_fd lfd;
                Error msg
            | Ok sfd ->
                Unix.set_nonblock sfd;
                Ok (Some (Thread.create (fun () -> stats_listener_loop t sfd) ())))
      in
      (match stats_thread with
      | Error msg -> Error msg
      | Ok stats_thread ->
      Unix.set_nonblock lfd;
      Atomic.set t.listening true;
      let dispatchers =
        List.init (max 1 t.cfg.dispatchers) (fun _ ->
            Thread.create dispatcher_loop t)
      in
      let janitor =
        if t.cfg.cache_file <> None then Some (Thread.create janitor_loop t)
        else None
      in
      let readers = ref [] in
      while not (Atomic.get t.stop) do
        (* Periodic maintenance rides the accept tick: completed trace
           events stream out (bounded buffers stay bounded), and an
           operator's dump request (SIGQUIT via {!request_flight_dump})
           is honoured between accepts. *)
        Obs.Trace.stream_flush ();
        if Atomic.exchange t.flight_wanted false then
          flight_dump_now t ~why:"requested";
        match Unix.select [ lfd ] [] [] 0.2 with
        | [], _, _ -> ()
        | _ -> (
            match accept_conn t lfd with
            | None -> ()
            | Some conn ->
                readers := Thread.create (fun () -> reader_loop t conn) () :: !readers)
        | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
      done;
      (* ---- drain ---- *)
      Atomic.set t.listening false;
      Obs.Flight.record "drain_begin";
      close_fd lfd;
      (match t.cfg.addr with
      | Protocol.Unix_sock path -> (
          try Unix.unlink path with Unix.Unix_error _ -> ())
      | Protocol.Tcp _ -> ());
      Mutex.lock t.m;
      t.stopping <- true;
      t.drain_deadline <-
        Int64.add (Obs.Clock.now_ns ())
          (Int64.of_float (t.cfg.drain_timeout *. 1e9));
      Condition.broadcast t.jobs_cond;
      Mutex.unlock t.m;
      List.iter Thread.join dispatchers;
      Obs.Flight.record ~v:(List.length dispatchers) "drain_dispatchers";
      (* Wake readers blocked in [read]: shutdown the receive side.  They
         observe EOF, release their connections and exit. *)
      let conns = locked t (fun () -> t.conns) in
      List.iter
        (fun c ->
          try Unix.shutdown c.fd Unix.SHUTDOWN_RECEIVE
          with Unix.Unix_error _ -> ())
        conns;
      List.iter (fun th -> Thread.join th) !readers;
      Obs.Flight.record ~v:(List.length !readers) "drain_readers";
      (match janitor with Some th -> Thread.join th | None -> ());
      (match stats_thread with Some th -> Thread.join th | None -> ());
      save_cache t;
      Obs.Flight.record "drain_done";
      flight_dump_now t ~why:"drain";
      Obs.Trace.stream_flush ();
      Ok ())
