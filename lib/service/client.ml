(* A small blocking client for the soimapd wire protocol.

   Shared by `soiload` (the load generator), `Check.Chaos.daemon_storm`
   (which also abuses raw sockets on purpose) and the service tests.
   One connection, line-buffered reads, optional I/O timeout.  Every
   failure is an [Error msg] — a daemon vanishing mid-reply is data to a
   load generator, not a crash. *)

type t = {
  fd : Unix.file_descr;
  buf : Buffer.t;
  chunk : Bytes.t;
}

let connect ?(timeout = 30.0) addr =
  let sa, dom =
    match addr with
    | Protocol.Unix_sock path -> (Unix.ADDR_UNIX path, Unix.PF_UNIX)
    | Protocol.Tcp (host, port) ->
        let inet =
          try (Unix.gethostbyname host).Unix.h_addr_list.(0)
          with Not_found | Invalid_argument _ ->
            Unix.inet_addr_of_string "127.0.0.1"
        in
        (Unix.ADDR_INET (inet, port), Unix.PF_INET)
  in
  let fd = Unix.socket dom Unix.SOCK_STREAM 0 in
  match Unix.connect fd sa with
  | () ->
      (try Unix.setsockopt_float fd Unix.SO_RCVTIMEO timeout
       with Unix.Unix_error _ -> ());
      (try Unix.setsockopt_float fd Unix.SO_SNDTIMEO timeout
       with Unix.Unix_error _ -> ());
      Ok { fd; buf = Buffer.create 512; chunk = Bytes.create 4096 }
  | exception Unix.Unix_error (e, _, _) ->
      (try Unix.close fd with Unix.Unix_error _ -> ());
      Error
        (Printf.sprintf "connect %s: %s"
           (Protocol.addr_to_string addr)
           (Unix.error_message e))

let close t = try Unix.close t.fd with Unix.Unix_error _ -> ()

let send_line t line =
  let data = line ^ "\n" in
  let len = String.length data in
  match
    let off = ref 0 in
    while !off < len do
      off := !off + Unix.write_substring t.fd data !off (len - !off)
    done
  with
  | () -> Ok ()
  | exception Unix.Unix_error (e, _, _) ->
      Error ("send: " ^ Unix.error_message e)

let recv_line t =
  let find_line () =
    match String.index_opt (Buffer.contents t.buf) '\n' with
    | None -> None
    | Some i ->
        let all = Buffer.contents t.buf in
        let line = String.sub all 0 i in
        Buffer.clear t.buf;
        Buffer.add_substring t.buf all (i + 1) (String.length all - i - 1);
        Some line
  in
  let rec go () =
    match find_line () with
    | Some l -> Ok l
    | None -> (
        match Unix.read t.fd t.chunk 0 (Bytes.length t.chunk) with
        | 0 -> Error "recv: connection closed"
        | n ->
            Buffer.add_subbytes t.buf t.chunk 0 n;
            go ()
        | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) ->
            Error "recv: timeout"
        | exception Unix.Unix_error (e, _, _) ->
            Error ("recv: " ^ Unix.error_message e))
  in
  go ()

let ( let* ) = Result.bind

let request t line =
  let* () = send_line t line in
  let* reply = recv_line t in
  match Obs.Json.parse reply with
  | Ok j -> Ok j
  | Error msg -> Error ("bad response json: " ^ msg)

(* Retry-connect until a freshly exec'd daemon is accepting. *)
let rec connect_retry ?(timeout = 30.0) ?(attempts = 50) ?(delay = 0.1) addr =
  match connect ~timeout addr with
  | Ok c -> Ok c
  | Error _ when attempts > 1 ->
      Unix.sleepf delay;
      connect_retry ~timeout ~attempts:(attempts - 1) ~delay addr
  | Error _ as e -> e
