(* The soimapd wire protocol: newline-delimited JSON frames.

   One request per line, one response per line, in order, over a Unix or
   TCP stream socket.  The format is deliberately boring — it reuses the
   repo's dependency-free {!Obs.Json} reader on both sides, frames are
   resynchronisable after a malformed line (the next newline starts the
   next frame), and every response carries the request's [id] so
   pipelined clients can match them up.

   Parsing and validation are total: a bad frame is an [Error msg], never
   an exception, and the budget-limit validation is the same
   {!Resilience.Budget.validate} the CLI runs, so a request that would be
   rejected as `soimap --timeout 0` is rejected identically here. *)

type addr = Unix_sock of string | Tcp of string * int

let addr_of_string s =
  match String.index_opt s ':' with
  | None -> Error (Printf.sprintf "bad address %S (unix:PATH or tcp:HOST:PORT)" s)
  | Some i -> (
      let scheme = String.sub s 0 i in
      let rest = String.sub s (i + 1) (String.length s - i - 1) in
      match scheme with
      | "unix" when rest <> "" -> Ok (Unix_sock rest)
      | "tcp" -> (
          match String.rindex_opt rest ':' with
          | None -> Error ("tcp address needs HOST:PORT: " ^ s)
          | Some j -> (
              let host = String.sub rest 0 j in
              let port = String.sub rest (j + 1) (String.length rest - j - 1) in
              match int_of_string_opt port with
              | Some p when p > 0 && p < 65536 ->
                  Ok (Tcp ((if host = "" then "127.0.0.1" else host), p))
              | _ -> Error ("bad tcp port: " ^ port)))
      | _ ->
          Error (Printf.sprintf "bad address %S (unix:PATH or tcp:HOST:PORT)" s))

let addr_to_string = function
  | Unix_sock p -> "unix:" ^ p
  | Tcp (h, p) -> Printf.sprintf "tcp:%s:%d" h p

(* ---------------- requests ---------------- *)

type format = Blif | Bench_fmt | Pla | Suite

let format_of_string = function
  | "blif" -> Ok Blif
  | "bench" -> Ok Bench_fmt
  | "pla" -> Ok Pla
  | "suite" -> Ok Suite
  | s -> Error ("unknown format: " ^ s ^ " (blif|bench|pla|suite)")

type map_params = {
  format : format;
  payload : string;
  flow : Mapper.Algorithms.flow;
  cost : Mapper.Cost.model;
  w_max : int;
  h_max : int;
  rewrite : int;
  timeout : float option;
  max_tuples : int option;
  max_bdd_nodes : int option;
  on_exhaust : [ `Degrade | `Fail ];
  dump : bool;
  delay_ms : int;
}

type body =
  | Ping
  | Stats
  | Expose
  | Map of map_params
  | Remap of { base : string; params : map_params }

type request = { id : string; trace_id : string option; body : body }

let cost_of_string s =
  match s with
  | "area" -> Ok Mapper.Cost.area
  | "depth" -> Ok Mapper.Cost.depth_soi
  | "depth-bulk" -> Ok Mapper.Cost.depth_bulk
  | _ -> (
      match int_of_string_opt s with
      | Some k when k >= 1 -> Ok (Mapper.Cost.clock_weighted k)
      | _ -> Error ("unknown cost model: " ^ s ^ " (area|depth|depth-bulk|<k>)"))

let flow_of_string = function
  | "bulk" -> Ok Mapper.Algorithms.Domino_map
  | "rs" -> Ok Mapper.Algorithms.Rs_map
  | "soi" -> Ok Mapper.Algorithms.Soi_domino_map
  | s -> Error ("unknown flow: " ^ s ^ " (bulk|rs|soi)")

(* Accessor helpers over Obs.Json with per-field type errors. *)
let field_str j name default =
  match Obs.Json.member name j with
  | None -> Ok default
  | Some v -> (
      match Obs.Json.to_string v with
      | Some s -> Ok s
      | None -> Error (name ^ " must be a string"))

let field_int j name default =
  match Obs.Json.member name j with
  | None -> Ok default
  | Some v -> (
      match Obs.Json.to_int v with
      | Some n -> Ok n
      | None -> Error (name ^ " must be an integer"))

let field_bool j name default =
  match Obs.Json.member name j with
  | None -> Ok default
  | Some v -> (
      match Obs.Json.to_bool v with
      | Some b -> Ok b
      | None -> Error (name ^ " must be a boolean"))

let field_float_opt j name =
  match Obs.Json.member name j with
  | None -> Ok None
  | Some v -> (
      match Obs.Json.to_float v with
      | Some f -> Ok (Some f)
      | None -> Error (name ^ " must be a number"))

let field_int_opt j name =
  match Obs.Json.member name j with
  | None -> Ok None
  | Some v -> (
      match Obs.Json.to_int v with
      | Some n -> Ok (Some n)
      | None -> Error (name ^ " must be an integer"))

let ( let* ) = Result.bind

let parse_map j =
  let* fmt_s =
    match Obs.Json.member "format" j with
    | None -> Error "map request needs a \"format\" (blif|bench|pla|suite)"
    | Some v -> (
        match Obs.Json.to_string v with
        | Some s -> Ok s
        | None -> Error "format must be a string")
  in
  let* format = format_of_string fmt_s in
  let* payload =
    match Obs.Json.member "payload" j with
    | None -> Error "map request needs a \"payload\""
    | Some v -> (
        match Obs.Json.to_string v with
        | Some s -> Ok s
        | None -> Error "payload must be a string")
  in
  let* flow_s = field_str j "flow" "soi" in
  let* flow = flow_of_string flow_s in
  let* cost_s = field_str j "cost" "area" in
  let* cost = cost_of_string cost_s in
  let* w_max = field_int j "w_max" 5 in
  let* h_max = field_int j "h_max" 8 in
  let* rewrite = field_int j "rewrite" 0 in
  let* timeout = field_float_opt j "timeout" in
  let* max_tuples = field_int_opt j "max_tuples" in
  let* max_bdd_nodes = field_int_opt j "max_bdd_nodes" in
  let* on_exhaust_s = field_str j "on_exhaust" "degrade" in
  let* on_exhaust =
    match on_exhaust_s with
    | "degrade" -> Ok `Degrade
    | "fail" -> Ok `Fail
    | s -> Error ("unknown on_exhaust policy: " ^ s ^ " (degrade|fail)")
  in
  let* dump = field_bool j "dump" false in
  let* delay_ms = field_int j "delay_ms" 0 in
  (* The same fail-fast validation as the soimap flags: a zero timeout
     or a non-positive cap is a client error, not a mapping attempt. *)
  let* () = Resilience.Budget.validate ?timeout ?max_tuples ?max_bdd_nodes () in
  let* () =
    if w_max < 1 || h_max < 1 then Error "w_max and h_max must be at least 1"
    else if rewrite < 0 then Error "rewrite must be non-negative"
    else if delay_ms < 0 then Error "delay_ms must be non-negative"
    else Ok ()
  in
  Ok
    (Map
       {
         format;
         payload;
         flow;
         cost;
         w_max;
         h_max;
         rewrite;
         timeout;
         max_tuples;
         max_bdd_nodes;
         on_exhaust;
         dump;
         delay_ms;
       })

(* The remap op: [payload] is the edited circuit, [base] the previously
   mapped one; everything else is a map request.  The rewrite portfolio
   re-prices whole variant networks, so it has no warm path — requesting
   both is a client error, not a silent cold map. *)
let parse_remap j =
  let* base =
    match Obs.Json.member "base" j with
    | None -> Error "remap request needs a \"base\" (the pre-edit circuit)"
    | Some v -> (
        match Obs.Json.to_string v with
        | Some s -> Ok s
        | None -> Error "base must be a string")
  in
  let* m = parse_map j in
  match m with
  | Map params ->
      if params.rewrite > 0 then
        Error "remap does not support rewrite (no warm path through the \
               portfolio)"
      else Ok (Remap { base; params })
  | _ -> assert false

let parse_request line =
  match Obs.Json.parse line with
  | Error msg -> Error ("bad json: " ^ msg)
  | Ok (Obs.Json.Obj _ as j) -> (
      let* id = field_str j "id" "" in
      let* trace_id =
        match Obs.Json.member "trace_id" j with
        | None -> Ok None
        | Some v -> (
            match Obs.Json.to_string v with
            | Some "" -> Ok None
            | Some s -> Ok (Some s)
            | None -> Error "trace_id must be a string")
      in
      let* op = field_str j "op" "map" in
      let* body =
        match op with
        | "ping" -> Ok Ping
        | "stats" -> Ok Stats
        | "expose" -> Ok Expose
        | "map" -> parse_map j
        | "remap" -> parse_remap j
        | s -> Error ("unknown op: " ^ s ^ " (map|remap|ping|stats|expose)")
      in
      Ok { id; trace_id; body })
  | Ok _ -> Error "request must be a json object"

(* ---------------- responses ---------------- *)

let json_escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (function
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let str s = "\"" ^ json_escape s ^ "\""

let obj fields =
  "{"
  ^ String.concat ", " (List.map (fun (k, v) -> str k ^ ": " ^ v) fields)
  ^ "}"

(* Every response echoes the request's trace id (when one is live) right
   after [id], so a client log line and a server trace span can be
   joined on it. *)
let tid_fields trace_id =
  match trace_id with None -> [] | Some t -> [ ("trace_id", str t) ]

let render_error ?trace_id ~id msg =
  obj
    ([ ("id", str id) ] @ tid_fields trace_id
    @ [ ("status", str "error"); ("reason", str msg) ])

let render_rejected ?trace_id ~id ~reason ~queue_depth ~retry_after_ms () =
  obj
    ([ ("id", str id) ] @ tid_fields trace_id
    @ [
        ("status", str "rejected");
        ("reason", str reason);
        ("queue_depth", string_of_int queue_depth);
        ("retry_after_ms", string_of_int retry_after_ms);
      ])

let render_failed ?trace_id ~id ~elapsed_ms reason =
  obj
    ([ ("id", str id) ] @ tid_fields trace_id
    @ [
        ("status", str "failed");
        ("reason", str reason);
        ("elapsed_ms", Printf.sprintf "%.3f" elapsed_ms);
      ])

type remap_summary = { rs_nodes : int; rs_dirty : int; rs_clean : int }

let render_mapped ?trace_id ?remap ~id ~status
    ~(counts : Domino.Circuit.counts) ~degradations ~elapsed_ms ~dump () =
  let remap_fields =
    match remap with
    | None -> []
    | Some r ->
        [
          ( "remap",
            obj
              [
                ("nodes", string_of_int r.rs_nodes);
                ("dirty", string_of_int r.rs_dirty);
                ("clean", string_of_int r.rs_clean);
              ] );
        ]
  in
  let base =
    [ ("id", str id) ] @ tid_fields trace_id
    @ [
      ("status", str status);
      ( "counts",
        obj
          [
            ("t_logic", string_of_int counts.Domino.Circuit.t_logic);
            ("t_disch", string_of_int counts.Domino.Circuit.t_disch);
            ("t_total", string_of_int counts.Domino.Circuit.t_total);
            ("t_clock", string_of_int counts.Domino.Circuit.t_clock);
            ("gates", string_of_int counts.Domino.Circuit.gate_count);
            ("levels", string_of_int counts.Domino.Circuit.levels);
            ("pi_inverters", string_of_int counts.Domino.Circuit.pi_inverters);
          ] );
      ( "degradations",
        "[" ^ String.concat ", " (List.map str degradations) ^ "]" );
      ("elapsed_ms", Printf.sprintf "%.3f" elapsed_ms);
    ]
    @ remap_fields
  in
  obj (match dump with None -> base | Some d -> base @ [ ("dump", str d) ])

let render_pong ?trace_id ~id () =
  obj
    ([ ("id", str id) ] @ tid_fields trace_id
    @ [ ("status", str "ok"); ("op", str "ping") ])

(* A metric family as JSON.  Histograms ship their bounds, per-bucket
   counts and value sum intact — the flat [(name, int)] view the
   ["service"] member carries cannot express them without loss. *)
let render_family (f : Obs.Metrics.family) =
  let arr xs = "[" ^ String.concat ", " (List.map string_of_int xs) ^ "]" in
  let base = [ ("name", str f.Obs.Metrics.f_name) ] in
  let kind =
    match f.Obs.Metrics.f_value with
    | Obs.Metrics.Counter v ->
        [ ("kind", str "counter"); ("value", string_of_int v) ]
    | Obs.Metrics.Gauge v ->
        [ ("kind", str "gauge"); ("value", string_of_int v) ]
    | Obs.Metrics.Histogram { bounds; counts; vsum } ->
        [
          ("kind", str "histogram");
          ("bounds", arr (Array.to_list bounds));
          ("counts", arr (Array.to_list counts));
          ("sum", string_of_int vsum);
        ]
  in
  obj (base @ kind @ [ ("stable", if f.Obs.Metrics.f_stable then "true" else "false") ])

let render_stats ?trace_id ?metrics ?gauges ~id totals =
  let base =
    [ ("id", str id) ] @ tid_fields trace_id
    @ [
        ("status", str "ok");
        ("op", str "stats");
        (* Compat view: flat int totals, the shape existing consumers
           (the chaos drill, older clients) already parse. *)
        ("service", obj (List.map (fun (k, v) -> (k, string_of_int v)) totals));
      ]
  in
  let gauges =
    match gauges with
    | None | Some [] -> []
    | Some gs ->
        [ ("gauges", obj (List.map (fun (k, v) -> (k, string_of_int v)) gs)) ]
  in
  let metrics =
    match metrics with
    | None -> []
    | Some fams ->
        [ ("metrics", "[" ^ String.concat ", " (List.map render_family fams) ^ "]") ]
  in
  obj (base @ gauges @ metrics)

let render_expose ?trace_id ~id text =
  obj
    ([ ("id", str id) ] @ tid_fields trace_id
    @ [ ("status", str "ok"); ("op", str "expose"); ("body", str text) ])

let response_trace_id j =
  match Obs.Json.member "trace_id" j with
  | Some v -> Obs.Json.to_string v
  | None -> None

(* Client-side decode: the one field every response carries. *)
let response_status j =
  match Obs.Json.member "status" j with
  | Some v -> (
      match Obs.Json.to_string v with
      | Some s -> Ok s
      | None -> Error "status is not a string")
  | None -> Error "response carries no status"
