(** A blocking soimapd client: one connection, line-delimited JSON.

    Used by the [soiload] load generator, the daemon chaos drill and the
    service tests.  All operations return [result] — a vanished or
    stalling daemon is an observation, never an exception. *)

type t

val connect : ?timeout:float -> Protocol.addr -> (t, string) result
(** Connect with [timeout] (default 30 s) as both SO_RCVTIMEO and
    SO_SNDTIMEO. *)

val connect_retry :
  ?timeout:float ->
  ?attempts:int ->
  ?delay:float ->
  Protocol.addr ->
  (t, string) result
(** Retry {!connect} every [delay] seconds (default 0.1, 50 attempts) —
    for racing a daemon that is still starting up. *)

val send_line : t -> string -> (unit, string) result
val recv_line : t -> (string, string) result

val request : t -> string -> (Obs.Json.t, string) result
(** [send_line] then [recv_line] then JSON-decode.  Pipelining is fine:
    responses to admitted requests arrive in completion order, each
    carrying its request [id]. *)

val close : t -> unit
