type params = {
  gate_base : float;
  per_height : float;
  per_width : float;
  per_discharge : float;
  per_fanout : float;
}

let default_params =
  {
    gate_base = 1.0;
    per_height = 0.35;
    per_width = 0.15;
    per_discharge = 0.08;
    per_fanout = 0.1;
  }

type report = {
  gate_delays : float array;
  arrivals : float array;
  critical_path : int list;
  critical_delay : float;
}

let analyze ?(params = default_params) (c : Circuit.t) =
  let n = Array.length c.Circuit.gates in
  let fanouts = Array.make n 0 in
  Array.iter
    (fun g ->
      List.iter
        (fun f -> fanouts.(f) <- fanouts.(f) + 1)
        (Pdn.gate_fanins g.Domino_gate.pdn))
    c.Circuit.gates;
  Array.iter
    (fun (_, s) ->
      match s with
      | Pdn.S_gate g -> fanouts.(g) <- fanouts.(g) + 1
      | Pdn.S_pi _ | Pdn.S_const _ -> ())
    c.Circuit.outputs;
  let gate_delays =
    Array.map
      (fun g ->
        params.gate_base
        +. (params.per_height *. float_of_int (Domino_gate.height g - 1))
        +. (params.per_width *. float_of_int (Domino_gate.width g - 1))
        +. (params.per_discharge
           *. float_of_int (Domino_gate.discharge_transistors g))
        +. (params.per_fanout *. float_of_int fanouts.(g.Domino_gate.id)))
      c.Circuit.gates
  in
  let arrivals = Array.make n 0.0 in
  let critical_fanin = Array.make n (-1) in
  Array.iteri
    (fun i g ->
      let worst = ref 0.0 and who = ref (-1) in
      List.iter
        (fun f ->
          if arrivals.(f) > !worst then begin
            worst := arrivals.(f);
            who := f
          end)
        (Pdn.gate_fanins g.Domino_gate.pdn);
      arrivals.(i) <- !worst +. gate_delays.(i);
      critical_fanin.(i) <- !who)
    c.Circuit.gates;
  let critical_delay = ref 0.0 and endpoint = ref (-1) in
  Array.iter
    (fun (_, s) ->
      match s with
      | Pdn.S_gate g ->
          if arrivals.(g) > !critical_delay then begin
            critical_delay := arrivals.(g);
            endpoint := g
          end
      | Pdn.S_pi _ | Pdn.S_const _ -> ())
    c.Circuit.outputs;
  let rec back g acc = if g < 0 then acc else back critical_fanin.(g) (g :: acc) in
  {
    gate_delays;
    arrivals;
    critical_path = (if !endpoint < 0 then [] else back !endpoint []);
    critical_delay = !critical_delay;
  }

let pp_report fmt r =
  Format.fprintf fmt "critical delay %.3f through %d gate(s): %s" r.critical_delay
    (List.length r.critical_path)
    (String.concat " -> " (List.map (Printf.sprintf "g%d") r.critical_path))
