(** Mapped domino circuits and their transistor accounting.

    A circuit is an array of {!Domino_gate.t} in topological order (a
    gate's [S_gate] fanins always have smaller identifiers) plus the
    primary-output bindings.  The transistor accounting matches the
    columns of the paper's result tables. *)

type t = {
  source : string;  (** name of the network this was mapped from *)
  input_names : string array;  (** primary inputs, by literal index *)
  gates : Domino_gate.t array;
  outputs : (string * Pdn.signal) array;
      (** primary output drivers: a gate, a literal for trivial
          feed-throughs, or a rail tie ([Pdn.S_const]) for outputs that
          folded to a constant *)
}

type counts = {
  t_logic : int;  (** PDN + precharge + foot + inverter + keeper *)
  t_disch : int;  (** p-discharge transistors (the paper's T_disch) *)
  t_total : int;  (** [t_logic + t_disch] *)
  t_clock : int;  (** clock-connected: precharge + foot + discharge *)
  gate_count : int;  (** the paper's #G *)
  levels : int;  (** domino gate levels on the longest PI-to-PO path *)
  pi_inverters : int;
      (** distinct negative input literals used (inverters at the input
          boundary; reported separately, excluded from [t_logic] as in
          the paper) *)
}

val counts : t -> counts
(** [counts c] computes the full accounting in one pass. *)

val validate : t -> (unit, string) result
(** [validate c] checks topological ordering of gate references, discharge
    paths addressing real series junctions, output references in range,
    and level consistency. *)

val eval : t -> bool array -> (string * bool) array
(** [eval c pi] is the functional (ideal, PBE-free) evaluation: each gate
    output is the conduction of its PDN.  Matches the source network on
    every vector when mapping is correct. *)

val eval64 : t -> int64 array -> (string * int64) array
(** Bit-parallel functional evaluation. *)

val equivalent_to : ?vectors:int -> ?seed:int -> t -> Unate.Unetwork.t -> bool
(** [equivalent_to c u] random-simulation-compares the mapped circuit
    against the unate network it was mapped from. *)

val to_network : t -> Logic.Network.t
(** [to_network c] re-expresses the mapped circuit as a gate-level
    network: every PDN becomes its AND/OR tree, negative input literals
    become inverters.  Preserves input order and output names, so the
    result can be compared formally against the source network with
    {!Logic.Equiv.networks}, written back to BLIF, or drawn with
    {!Logic.Dot}. *)

val equivalent_exact : ?limit:int -> t -> Logic.Network.t -> Logic.Equiv.verdict
(** [equivalent_exact c source] formally compares the mapped circuit
    against the network it was mapped from, via {!to_network} and BDDs. *)

val equivalent_checked :
  ?limit:int ->
  ?vectors:int ->
  ?seed:int ->
  t ->
  Logic.Network.t ->
  Logic.Equiv.checked
(** {!equivalent_exact} with the degradation ladder: output cones whose
    BDDs blow the [limit] node cap fall back to seeded bit-parallel
    sampling, and the result records whether the verdict is exact and
    how many vectors the fallback drew
    ({!Logic.Equiv.networks_per_output_or_sample}). *)

val pp : Format.formatter -> t -> unit
(** Multi-line listing of every gate and output binding. *)

val dump_version : int
(** Version stamped into the first line of {!dump} output. *)

val dump : t -> string
(** [dump c] is a canonical, versioned, deterministic text export of the
    whole circuit — inputs, every gate's PDN / foot / level / discharge
    paths, output bindings, and the recomputed transistor accounting.
    Two structurally equal circuits always dump to the same bytes, so the
    golden regression corpus ([test/golden/]) diffs against this format.
    The leading [soi-domino-dump N] line is the format version: bump it
    (and regenerate the corpus) when the {e format} changes. *)
