(** Pull-down networks of domino gates.

    A PDN is a series/parallel tree of nMOS transistors between the
    dynamic node (top) and the gate's foot (bottom).  [Series (t, b)]
    places structure [t] above structure [b]; [Parallel (a, b)] connects
    the two structures side by side.  Each [Leaf] is one transistor whose
    gate terminal is driven by a {!signal}: a primary-input literal or the
    output of another domino gate.

    The physical internal nodes of a PDN are exactly its series junctions;
    they are identified by {!path}s (branch directions from the root).
    The parasitic-bipolar bookkeeping in {!Pbe_analysis} designates a
    subset of them as p-discharge points. *)

type signal =
  | S_pi of { input : int; positive : bool }
      (** primary-input literal (negative phase implies an inverter at the
          input boundary) *)
  | S_gate of int  (** output of domino gate [id] in the same circuit *)
  | S_const of bool
      (** a rail tie (Vdd / ground).  Only legal as a primary-output
          driver in {!Circuit.t} — constant nets are folded away before
          mapping, so a constant never gates a PDN transistor;
          {!Circuit.validate} rejects [S_const] inside a gate.  This is
          the documented representation of a constant primary output:
          domino gates cannot evaluate to a constant (the dynamic node
          always precharges high), so the output is tied to the rail
          directly, with no transistors, clock load or PBE exposure. *)

type t =
  | Leaf of signal
  | Series of t * t  (** [Series (top, bottom)] *)
  | Parallel of t * t

type path = int list
(** Identifies a series junction: branch choices from the root (0 = first
    child, 1 = second child) down to the [Series] constructor whose
    top/bottom junction is meant. *)

val width : t -> int
(** [width p] is the maximum number of parallel transistors (the paper's
    [W]). *)

val height : t -> int
(** [height p] is the maximum series chain length (the paper's [H]). *)

val transistors : t -> int
(** [transistors p] is the number of leaves. *)

val signals : t -> signal list
(** [signals p] is every leaf signal, left to right (duplicates kept). *)

val gate_fanins : t -> int list
(** [gate_fanins p] is the de-duplicated, sorted list of [S_gate]
    identifiers appearing in [p]. *)

val has_pi_leaf : t -> bool
(** [has_pi_leaf p] tells whether any leaf is a primary-input literal
    (such gates need an n-clock foot transistor). *)

val series_junctions : t -> path list
(** [series_junctions p] is every series junction path, in a deterministic
    order. *)

val eval : (signal -> bool) -> t -> bool
(** [eval env p] is the steady-state conduction of the PDN: [true] iff an
    all-on path of transistors connects top to bottom. *)

val eval64 : (signal -> int64) -> t -> int64
(** Bit-parallel version of {!eval}. *)

val map_signals : (signal -> signal) -> t -> t
(** [map_signals f p] rewrites every leaf signal. *)

val subtree : t -> path -> t
(** [subtree p path] is the subtree addressed by [path].
    @raise Invalid_argument if the path does not address a node. *)

val pp : Format.formatter -> t -> unit
(** [pp fmt p] prints a compact algebraic rendering, e.g.
    [((a*b)+c)*d]. *)

val to_string : t -> string
(** [to_string p] is {!pp} rendered to a string. *)
