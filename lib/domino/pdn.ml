type signal =
  | S_pi of { input : int; positive : bool }
  | S_gate of int
  | S_const of bool

type t =
  | Leaf of signal
  | Series of t * t
  | Parallel of t * t

type path = int list

let rec width = function
  | Leaf _ -> 1
  | Series (a, b) -> max (width a) (width b)
  | Parallel (a, b) -> width a + width b

let rec height = function
  | Leaf _ -> 1
  | Series (a, b) -> height a + height b
  | Parallel (a, b) -> max (height a) (height b)

let rec transistors = function
  | Leaf _ -> 1
  | Series (a, b) | Parallel (a, b) -> transistors a + transistors b

let signals p =
  let rec go acc = function
    | Leaf s -> s :: acc
    | Series (a, b) | Parallel (a, b) -> go (go acc a) b
  in
  List.rev (go [] p)

let gate_fanins p =
  signals p
  |> List.filter_map (function S_gate g -> Some g | S_pi _ | S_const _ -> None)
  |> List.sort_uniq compare

let rec has_pi_leaf = function
  | Leaf (S_pi _) -> true
  | Leaf (S_gate _ | S_const _) -> false
  | Series (a, b) | Parallel (a, b) -> has_pi_leaf a || has_pi_leaf b

let series_junctions p =
  let rec go prefix acc = function
    | Leaf _ -> acc
    | Series (a, b) ->
        let acc = List.rev prefix :: acc in
        let acc = go (0 :: prefix) acc a in
        go (1 :: prefix) acc b
    | Parallel (a, b) ->
        let acc = go (0 :: prefix) acc a in
        go (1 :: prefix) acc b
  in
  List.rev (go [] [] p)

let rec eval env = function
  | Leaf s -> env s
  | Series (a, b) -> eval env a && eval env b
  | Parallel (a, b) -> eval env a || eval env b

let rec eval64 env = function
  | Leaf s -> env s
  | Series (a, b) -> Int64.logand (eval64 env a) (eval64 env b)
  | Parallel (a, b) -> Int64.logor (eval64 env a) (eval64 env b)

let rec map_signals f = function
  | Leaf s -> Leaf (f s)
  | Series (a, b) -> Series (map_signals f a, map_signals f b)
  | Parallel (a, b) -> Parallel (map_signals f a, map_signals f b)

let rec subtree p path =
  match (p, path) with
  | _, [] -> p
  | Leaf _, _ -> invalid_arg "Pdn.subtree: path descends below a leaf"
  | (Series (a, _) | Parallel (a, _)), 0 :: rest -> subtree a rest
  | (Series (_, b) | Parallel (_, b)), 1 :: rest -> subtree b rest
  | _, d :: _ -> invalid_arg (Printf.sprintf "Pdn.subtree: bad direction %d" d)

let signal_to_string = function
  | S_pi { input; positive } ->
      Printf.sprintf "%sx%d" (if positive then "" else "~") input
  | S_gate g -> Printf.sprintf "g%d" g
  | S_const b -> if b then "1" else "0"

let rec pp fmt = function
  | Leaf s -> Format.pp_print_string fmt (signal_to_string s)
  | Series (a, b) -> Format.fprintf fmt "(%a*%a)" pp a pp b
  | Parallel (a, b) -> Format.fprintf fmt "(%a+%a)" pp a pp b

let to_string p = Format.asprintf "%a" pp p
