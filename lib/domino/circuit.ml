type t = {
  source : string;
  input_names : string array;
  gates : Domino_gate.t array;
  outputs : (string * Pdn.signal) array;
}

type counts = {
  t_logic : int;
  t_disch : int;
  t_total : int;
  t_clock : int;
  gate_count : int;
  levels : int;
  pi_inverters : int;
}

let counts c =
  let t_logic = ref 0 and t_disch = ref 0 and t_clock = ref 0 in
  let neg_lits = Hashtbl.create 16 in
  let note_signal = function
    | Pdn.S_pi { input; positive = false } -> Hashtbl.replace neg_lits input ()
    | Pdn.S_pi _ | Pdn.S_gate _ | Pdn.S_const _ -> ()
  in
  Array.iter
    (fun g ->
      t_logic := !t_logic + Domino_gate.logic_transistors g;
      t_disch := !t_disch + Domino_gate.discharge_transistors g;
      t_clock := !t_clock + Domino_gate.clock_transistors g;
      List.iter note_signal (Pdn.signals g.Domino_gate.pdn))
    c.gates;
  Array.iter (fun (_, s) -> note_signal s) c.outputs;
  let levels =
    Array.fold_left
      (fun acc (_, s) ->
        match s with
        | Pdn.S_gate g -> max acc c.gates.(g).Domino_gate.level
        | Pdn.S_pi _ | Pdn.S_const _ -> acc)
      0 c.outputs
  in
  {
    t_logic = !t_logic;
    t_disch = !t_disch;
    t_total = !t_logic + !t_disch;
    t_clock = !t_clock;
    gate_count = Array.length c.gates;
    levels;
    pi_inverters = Hashtbl.length neg_lits;
  }

let validate c =
  let n_gates = Array.length c.gates in
  let n_inputs = Array.length c.input_names in
  let error = ref None in
  let fail fmt = Printf.ksprintf (fun s -> if !error = None then error := Some s) fmt in
  (* [owner] is the gate id, or [-1] when checking a primary-output
     binding (outputs may reference any gate, and only outputs may be
     tied to a rail). *)
  let check_signal owner = function
    | Pdn.S_gate g ->
        if g < 0 || g >= n_gates then
          if owner >= 0 then fail "gate %d references missing gate %d" owner g
          else fail "output references missing gate %d" g
        else if owner >= 0 && g >= owner then
          fail "gate %d references non-causal gate %d" owner g
    | Pdn.S_pi { input; _ } ->
        if input < 0 || input >= n_inputs then
          fail "gate %d references missing input %d" owner input
    | Pdn.S_const _ ->
        (* Rail ties are a primary-output representation only; a constant
           never gates a transistor inside a PDN. *)
        if owner >= 0 then fail "gate %d has a constant leaf in its PDN" owner
  in
  Array.iteri
    (fun i g ->
      if g.Domino_gate.id <> i then fail "gate at position %d has id %d" i g.Domino_gate.id;
      List.iter (check_signal i) (Pdn.signals g.Domino_gate.pdn);
      (* Discharge paths must address series junctions. *)
      let junctions = Pdn.series_junctions g.Domino_gate.pdn in
      List.iter
        (fun p ->
          if not (List.mem p junctions) then
            fail "gate %d: discharge path does not address a series junction" i)
        g.Domino_gate.discharge_points;
      (* Foot flag must match PDN contents. *)
      if Pdn.has_pi_leaf g.Domino_gate.pdn && not g.Domino_gate.footed then
        fail "gate %d drives primary inputs but has no foot" i;
      (* Level consistency. *)
      let expect =
        1
        + List.fold_left
            (fun acc f -> max acc c.gates.(f).Domino_gate.level)
            0
            (Pdn.gate_fanins g.Domino_gate.pdn)
      in
      if g.Domino_gate.level <> expect then
        fail "gate %d has level %d, expected %d" i g.Domino_gate.level expect)
    c.gates;
  Array.iter (fun (_, s) -> check_signal (-1) s) c.outputs;
  match !error with None -> Ok () | Some e -> Error e

let eval c pi =
  let n_inputs = Array.length c.input_names in
  if Array.length pi <> n_inputs then invalid_arg "Circuit.eval: wrong input count";
  let gate_vals = Array.make (Array.length c.gates) false in
  let env = function
    | Pdn.S_pi { input; positive } -> if positive then pi.(input) else not pi.(input)
    | Pdn.S_gate g -> gate_vals.(g)
    | Pdn.S_const b -> b
  in
  Array.iteri (fun i g -> gate_vals.(i) <- Pdn.eval env g.Domino_gate.pdn) c.gates;
  Array.map (fun (nm, s) -> (nm, env s)) c.outputs

let eval64 c words =
  let n_inputs = Array.length c.input_names in
  if Array.length words <> n_inputs then invalid_arg "Circuit.eval64: wrong input count";
  let gate_vals = Array.make (Array.length c.gates) 0L in
  let env = function
    | Pdn.S_pi { input; positive } ->
        if positive then words.(input) else Int64.lognot words.(input)
    | Pdn.S_gate g -> gate_vals.(g)
    | Pdn.S_const b -> if b then -1L else 0L
  in
  Array.iteri (fun i g -> gate_vals.(i) <- Pdn.eval64 env g.Domino_gate.pdn) c.gates;
  Array.map (fun (nm, s) -> (nm, env s)) c.outputs

let equivalent_to ?(vectors = 4096) ?(seed = 0xD011) c u =
  let n_inputs = Array.length c.input_names in
  if n_inputs <> Array.length (Unate.Unetwork.inputs u) then false
  else begin
    let rounds = (vectors + 63) / 64 in
    let rng = Logic.Rng.create seed in
    let ok = ref true in
    for _ = 1 to rounds do
      if !ok then begin
        let words = Array.init n_inputs (fun _ -> Logic.Rng.next64 rng) in
        let rc = eval64 c words and ru = Unate.Unetwork.eval64 u words in
        let tbl = Hashtbl.create 16 in
        Array.iter (fun (nm, v) -> Hashtbl.replace tbl nm v) ru;
        Array.iter
          (fun (nm, v) ->
            match Hashtbl.find_opt tbl nm with
            | Some v' when v = v' -> ()
            | _ -> ok := false)
          rc
      end
    done;
    !ok
  end

let to_network c =
  let b = Logic.Builder.create ~name:(c.source ^ "_mapped") () in
  let ins = Array.map (fun nm -> Logic.Builder.input b nm) c.input_names in
  let gate_wires = Array.make (Array.length c.gates) (-1) in
  let wire_of_signal = function
    | Pdn.S_pi { input; positive } ->
        if positive then ins.(input) else Logic.Builder.not_ b ins.(input)
    | Pdn.S_gate g -> gate_wires.(g)
    | Pdn.S_const c -> Logic.Builder.const b c
  in
  let rec wire_of_pdn = function
    | Pdn.Leaf s -> wire_of_signal s
    | Pdn.Series (x, y) -> Logic.Builder.and2 b (wire_of_pdn x) (wire_of_pdn y)
    | Pdn.Parallel (x, y) -> Logic.Builder.or2 b (wire_of_pdn x) (wire_of_pdn y)
  in
  Array.iteri (fun i g -> gate_wires.(i) <- wire_of_pdn g.Domino_gate.pdn) c.gates;
  Array.iter
    (fun (nm, s) -> Logic.Network.set_output (Logic.Builder.network b) nm (wire_of_signal s))
    c.outputs;
  Logic.Builder.network b

let equivalent_exact ?limit c source =
  Logic.Equiv.networks_per_output ?limit source (to_network c)

let equivalent_checked ?limit ?vectors ?seed c source =
  Logic.Equiv.networks_per_output_or_sample ?limit ?vectors ?seed source
    (to_network c)

(* The canonical text export behind the golden regression corpus.  The
   format is versioned so that a deliberate change to the dump itself is
   distinguishable from a mapper result shift: bump the version and
   regenerate the corpus when the format changes, never when chasing a
   diff.  Every field is rendered from the circuit alone (counts are
   recomputed), so the dump is independent of how the circuit was
   produced — memoized and cold mappings print identically. *)
let dump_version = 1

let dump c =
  let buf = Buffer.create 4096 in
  let add fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  let signal_str = function
    | Pdn.S_pi { input; positive } ->
        Printf.sprintf "%sx%d" (if positive then "" else "~") input
    | Pdn.S_gate g -> Printf.sprintf "g%d" g
    | Pdn.S_const b -> if b then "const1" else "const0"
  in
  let path_str p = String.concat "." (List.map string_of_int p) in
  add "soi-domino-dump %d\n" dump_version;
  add "source %s\n" c.source;
  add "inputs %d\n" (Array.length c.input_names);
  Array.iteri (fun i nm -> add "  x%d %s\n" i nm) c.input_names;
  add "gates %d\n" (Array.length c.gates);
  Array.iter
    (fun g ->
      add "  g%d level=%d foot=%d pdn=%s disch=[%s]\n" g.Domino_gate.id
        g.Domino_gate.level
        (if g.Domino_gate.footed then 1 else 0)
        (Pdn.to_string g.Domino_gate.pdn)
        (String.concat ","
           (List.map (fun p -> "<" ^ path_str p ^ ">")
              g.Domino_gate.discharge_points)))
    c.gates;
  add "outputs %d\n" (Array.length c.outputs);
  Array.iter (fun (nm, s) -> add "  %s = %s\n" nm (signal_str s)) c.outputs;
  let k = counts c in
  add
    "counts t_logic=%d t_disch=%d t_total=%d t_clock=%d gates=%d levels=%d \
     pi_inverters=%d\n"
    k.t_logic k.t_disch k.t_total k.t_clock k.gate_count k.levels
    k.pi_inverters;
  Buffer.contents buf

let pp fmt c =
  Format.fprintf fmt "@[<v>domino circuit %s: %d gates@," c.source (Array.length c.gates);
  Array.iter (fun g -> Format.fprintf fmt "  %a@," Domino_gate.pp g) c.gates;
  Array.iter
    (fun (nm, s) ->
      let d =
        match s with
        | Pdn.S_gate g -> Printf.sprintf "g%d" g
        | Pdn.S_pi { input; positive } ->
            Printf.sprintf "%sx%d" (if positive then "" else "~") input
        | Pdn.S_const c -> if c then "1" else "0"
      in
      Format.fprintf fmt "  output %s = %s@," nm d)
    c.outputs;
  Format.fprintf fmt "@]"
