open Domino

let sanitize s =
  let s =
    String.map
      (fun ch ->
        match ch with
        | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' -> ch
        | _ -> '_')
      s
  in
  if String.length s = 0 then "_"
  else if match s.[0] with '0' .. '9' -> true | _ -> false then "_" ^ s
  else s

let to_string (c : Circuit.t) =
  let buf = Buffer.create 16384 in
  let emitf fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  let inputs = Array.map sanitize c.Circuit.input_names in
  let out_ports = Array.map (fun (nm, _) -> sanitize nm) c.Circuit.outputs in
  emitf "// SOI domino switch-level netlist for %s\n" (sanitize c.Circuit.source);
  emitf "module %s(clk, %s%s%s);\n" (sanitize c.Circuit.source)
    (String.concat ", " (Array.to_list inputs))
    (if Array.length out_ports > 0 then ", " else "")
    (String.concat ", " (Array.to_list out_ports));
  emitf "  input clk;\n";
  Array.iter (fun nm -> emitf "  input %s;\n" nm) inputs;
  Array.iter (fun nm -> emitf "  output %s;\n" nm) out_ports;
  emitf "  supply1 vdd;\n  supply0 gnd;\n  wire nclk;\n  not (nclk, clk);\n";
  (* Boundary inverters for negative literals. *)
  let neg = Hashtbl.create 16 in
  let note = function
    | Pdn.S_pi { input; positive = false } -> Hashtbl.replace neg input ()
    | Pdn.S_pi _ | Pdn.S_gate _ | Pdn.S_const _ -> ()
  in
  Array.iter (fun g -> List.iter note (Pdn.signals g.Domino_gate.pdn)) c.Circuit.gates;
  Array.iter (fun (_, s) -> note s) c.Circuit.outputs;
  Hashtbl.iter
    (fun i () ->
      emitf "  wire %s_n;\n  not (%s_n, %s);\n" inputs.(i) inputs.(i) inputs.(i))
    neg;
  let signal_wire = function
    | Pdn.S_pi { input; positive } ->
        if positive then inputs.(input) else inputs.(input) ^ "_n"
    | Pdn.S_gate g -> Printf.sprintf "out_g%d" g
    | Pdn.S_const c -> if c then "vdd" else "gnd"  (* rail-tied output *)
  in
  Array.iter
    (fun g ->
      let id = g.Domino_gate.id in
      emitf "  // gate g%d level %d: %s\n" id g.Domino_gate.level
        (Pdn.to_string g.Domino_gate.pdn);
      emitf "  trireg dyn_g%d;\n  wire out_g%d;\n" id id;
      (* precharge *)
      emitf "  pmos (dyn_g%d, vdd, clk);\n" id;
      let junctions = Pdn.series_junctions g.Domino_gate.pdn in
      let names = Hashtbl.create 8 in
      List.iteri
        (fun k path ->
          Hashtbl.replace names path (Printf.sprintf "g%d_n%d" id k);
          emitf "  trireg g%d_n%d;\n" id k)
        junctions;
      let bottom =
        if g.Domino_gate.footed then begin
          emitf "  wire bot_g%d;\n" id;
          Printf.sprintf "bot_g%d" id
        end
        else "gnd"
      in
      let rec walk prefix top bot = function
        | Pdn.Leaf s -> emitf "  nmos (%s, %s, %s);\n" top bot (signal_wire s)
        | Pdn.Series (a, b) ->
            let j = Hashtbl.find names (List.rev prefix) in
            walk (0 :: prefix) top j a;
            walk (1 :: prefix) j bot b
        | Pdn.Parallel (a, b) ->
            walk (0 :: prefix) top bot a;
            walk (1 :: prefix) top bot b
      in
      walk [] (Printf.sprintf "dyn_g%d" id) bottom g.Domino_gate.pdn;
      if g.Domino_gate.footed then emitf "  nmos (%s, gnd, clk);\n" bottom;
      (* output inverter as its two switches, plus keeper *)
      emitf "  pmos (out_g%d, vdd, dyn_g%d);\n" id id;
      emitf "  nmos (out_g%d, gnd, dyn_g%d);\n" id id;
      emitf "  pmos (dyn_g%d, vdd, out_g%d);\n" id id;
      (* p-discharge transistors: conduct during precharge (clk low) *)
      List.iter
        (fun path ->
          emitf "  pmos (%s, gnd, clk);\n" (Hashtbl.find names path))
        g.Domino_gate.discharge_points)
    c.Circuit.gates;
  Array.iteri
    (fun k (_, s) -> emitf "  assign %s = %s;\n" out_ports.(k) (signal_wire s))
    c.Circuit.outputs;
  emitf "endmodule\n";
  Buffer.contents buf

let to_file c path =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (to_string c))

let primitive_count text =
  String.split_on_char '\n' text
  |> List.map String.trim
  |> List.filter (fun line ->
         String.length line >= 5
         && (String.sub line 0 5 = "nmos " || String.sub line 0 5 = "pmos "))
  |> List.length
