(* Seeded fault injection.

   A chaos value decides, per (site, salt), whether to inject a fault at
   that point and which kind: an exception, a short delay, or a budget
   exhaustion.  The decision is a pure hash of (seed, site, salt) — no
   global counter — so a chaos-wrapped pipeline stays bit-identical at
   any worker count, and a fault observed at [-j 1] is observed at
   [-j N] in the same run.

   The per-instance [injected] counter is for end-of-run accounting
   (every fault the injector fired must be visible in the caller's
   report); it is an [Atomic.t] so injection points on worker domains
   need no locking, and it is deliberately not part of any
   deterministic output. *)

type fault = Raise | Delay | Exhaust

exception Injected of string * fault  (* site, fault *)

let fault_name = function
  | Raise -> "raise"
  | Delay -> "delay"
  | Exhaust -> "exhaust"

type t = {
  seed : int option;  (* None = disabled *)
  rate : float;  (* probability of a fault per point *)
  delay : float;  (* seconds slept by a Delay fault *)
  count : int Atomic.t;  (* faults fired so far, all kinds *)
}

let disabled =
  { seed = None; rate = 0.0; delay = 0.0; count = Atomic.make 0 }

let make ?(rate = 0.25) ?(delay = 0.002) ~seed () =
  if rate < 0.0 || rate > 1.0 then invalid_arg "Chaos.make: rate not in [0,1]";
  if delay < 0.0 then invalid_arg "Chaos.make: negative delay";
  { seed = Some seed; rate; delay; count = Atomic.make 0 }

let enabled c = c.seed <> None

let total_injected c = Atomic.get c.count

(* splitmix64 finalizer over the packed (seed, site, salt) key. *)
let mix z =
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30))
      0xbf58476d1ce4e5b9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27))
      0x94d049bb133111ebL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let decide c ~site ~salt =
  match c.seed with
  | None -> None
  | Some seed ->
      let h =
        mix
          (Int64.add
             (Int64.mul (Int64.of_int (Hashtbl.hash site)) 0x9e3779b97f4a7c15L)
             (Int64.add
                (Int64.mul (Int64.of_int salt) 0x2545f4914f6cdd1dL)
                (Int64.of_int seed)))
      in
      let u =
        Int64.to_float (Int64.logand h 0xFFFFFFL) /. 16_777_216.0
      in
      if u >= c.rate then None
      else
        Some
          (match Int64.to_int (Int64.logand (Int64.shift_right_logical h 24) 3L)
           with
          | 0 -> Raise
          | 1 -> Delay
          | _ -> Exhaust)

let fire c ?note ~site fault =
  Atomic.incr c.count;
  (match note with None -> () | Some f -> f site fault);
  match fault with
  | Delay -> if c.delay > 0.0 then Unix.sleepf c.delay
  | Raise -> raise (Injected (site, Raise))
  | Exhaust -> Budget.trip (Budget.Injected site)

let inject c ?note ~site ~salt () =
  match decide c ~site ~salt with
  | None -> ()
  | Some fault -> fire c ?note ~site fault

(* A point is an injector pre-bound to one chaos value, salt and note
   sink, so deep callees (the oracle stages) need only a site name. *)
type point = site:string -> unit

let no_point : point = fun ~site:_ -> ()

let point_for c ?note ~salt () : point =
  if not (enabled c) then no_point
  else fun ~site -> inject c ?note ~site ~salt ()
