(** Seeded chaos injection for the mapping/verification pipeline.

    A chaos value decides, per (site, salt), whether a fault fires at
    that point and which kind: [Raise] (an exception the surrounding
    stage must contain), [Delay] (a short sleep, exercising timeout and
    pool-starvation paths), or [Exhaust] (a synthetic
    {!Budget.Exhausted}, exercising the degradation ladder).

    Decisions are a pure hash of (seed, site, salt) — no hidden counter
    — so a chaos-wrapped run is bit-identical at any worker count: use
    a stable per-task index as the salt.  The per-instance fault counter
    exists only for end-of-run accounting against the caller's report. *)

type fault = Raise | Delay | Exhaust

exception Injected of string * fault
(** [(site, fault)] thrown by a [Raise] fault at [site]. *)

val fault_name : fault -> string

type t

val disabled : t
(** Never injects; every point is a no-op. *)

val make : ?rate:float -> ?delay:float -> seed:int -> unit -> t
(** [make ~seed ()] builds an injector firing at probability [rate]
    (default 0.25) per point; [Delay] faults sleep [delay] seconds
    (default 2ms).  @raise Invalid_argument on a rate outside [0,1] or
    a negative delay. *)

val enabled : t -> bool

val decide : t -> site:string -> salt:int -> fault option
(** The pure decision: what {!inject} would fire at this point.  Safe
    to re-evaluate for accounting — it mutates nothing. *)

val inject : t -> ?note:(string -> fault -> unit) -> site:string -> salt:int -> unit -> unit
(** Maybe fire a fault: bumps the counter, calls [note], then sleeps
    ([Delay]), raises {!Injected} ([Raise]) or raises
    {!Budget.Exhausted} ([Exhaust]). *)

val total_injected : t -> int
(** Faults fired so far, all kinds, all domains. *)

(** {1 Pre-bound injection points} *)

type point = site:string -> unit
(** An injector pre-bound to a chaos value, salt and note sink, so deep
    callees (the oracle stages) need only name their site. *)

val no_point : point

val point_for : t -> ?note:(string -> fault -> unit) -> salt:int -> unit -> point
