(** Resource budgets for the worst-case-exponential pipeline stages.

    The DP mapper's tuple tables and the per-cone equivalence BDDs can
    blow up on adversarial nets.  A budget bounds that work with
    cooperative checkpoints: the heavy loops call {!charge_tuples} and
    {!check_deadline} at their own cadence, and a tripped budget
    surfaces as the typed {!Exhausted} exception, which callers turn
    into an {!Outcome.t} (fail hard, or degrade to a cheaper
    algorithm).

    Deadlines are anchored on the monotonic clock ({!Obs.Clock}):
    stepping the wall clock (NTP, a manual date change) never expires or
    extends a budget — only monotonic time elapsed since {!make} counts
    against the allowance.

    A budget value is meant to be used by one task at a time (each fuzz
    run builds its own); the shared {!unlimited} value never mutates and
    is safe to share across domains. *)

type reason =
  | Deadline of float  (** the wall-clock allowance that expired, seconds *)
  | Tuple_limit of int  (** the tuple-formation allowance that ran out *)
  | Bdd_node_limit of int  (** the BDD node allowance that ran out *)
  | Injected of string  (** chaos-injected exhaustion; names the site *)
  | Cache_invalid of string
      (** a persistent cache file could not be used (corrupt, truncated,
          wrong version); the pipeline degrades to a cold start *)

exception Exhausted of reason
(** Raised at a cooperative checkpoint when the budget is spent. *)

type t

val unlimited : t
(** The no-op budget: every check is a cheap field test. *)

val make : ?timeout:float -> ?max_tuples:int -> ?max_bdd_nodes:int -> unit -> t
(** [make ()] builds a budget; each limit is independent and optional.
    [timeout] is a relative allowance in seconds, anchored on the
    monotonic clock at the call.  [timeout:0.0] is legal and builds a
    pre-expired budget (the fuzzer's deterministic timeout path).
    @raise Invalid_argument on a negative or non-finite timeout or a
    non-positive cap. *)

val validate :
  ?timeout:float ->
  ?max_tuples:int ->
  ?max_bdd_nodes:int ->
  unit ->
  (unit, string) result
(** Flag-level validation shared by the CLI and the daemon's request
    parser: rejects a zero, negative or non-finite [timeout] and
    non-positive caps with a one-line message, so nonsensical limits
    fail fast instead of silently building an always-exhausted or
    unlimited budget.  Stricter than {!make} on purpose ([make] still
    accepts the deliberate [timeout:0.0]). *)

val is_unlimited : t -> bool

val max_bdd_nodes : t -> int option
(** The BDD node cap, for handing to {!Logic.Bdd.manager}. *)

val check_deadline : t -> unit
(** Checkpoint: raises [Exhausted (Deadline _)] past the cutoff. *)

val remaining_s : t -> float option
(** Monotonic seconds left before the deadline trips ([None] when the
    budget carries no timeout; negative once expired). *)

val charge_tuples : t -> int -> unit
(** [charge_tuples b n] spends [n] units of the tuple allowance; raises
    [Exhausted (Tuple_limit _)] once the cap is crossed. *)

val tuples_spent : t -> int
(** Units charged so far through {!charge_tuples} (0 when the budget
    carries no tuple cap — the no-cap path never counts).  Exact-search
    backends report it as their deterministic work measure. *)

val trip : reason -> 'a
(** Record the exhaustion in the flight recorder ({!Obs.Flight}, kind
    ["budget"]) and raise [Exhausted].  Every internal checkpoint
    funnels through it; external fault injectors (chaos) should too, so
    a post-incident dump explains every degraded outcome. *)

val reason_to_string : reason -> string
val pp_reason : Format.formatter -> reason -> unit
