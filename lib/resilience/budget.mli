(** Resource budgets for the worst-case-exponential pipeline stages.

    The DP mapper's tuple tables and the per-cone equivalence BDDs can
    blow up on adversarial nets.  A budget bounds that work with
    cooperative checkpoints: the heavy loops call {!charge_tuples} and
    {!check_deadline} at their own cadence, and a tripped budget
    surfaces as the typed {!Exhausted} exception, which callers turn
    into an {!Outcome.t} (fail hard, or degrade to a cheaper
    algorithm).

    A budget value is meant to be used by one task at a time (each fuzz
    run builds its own); the shared {!unlimited} value never mutates and
    is safe to share across domains. *)

type reason =
  | Deadline of float  (** the wall-clock allowance that expired, seconds *)
  | Tuple_limit of int  (** the tuple-formation allowance that ran out *)
  | Bdd_node_limit of int  (** the BDD node allowance that ran out *)
  | Injected of string  (** chaos-injected exhaustion; names the site *)
  | Cache_invalid of string
      (** a persistent cache file could not be used (corrupt, truncated,
          wrong version); the pipeline degrades to a cold start *)

exception Exhausted of reason
(** Raised at a cooperative checkpoint when the budget is spent. *)

type t

val unlimited : t
(** The no-op budget: every check is a cheap field test. *)

val make : ?timeout:float -> ?max_tuples:int -> ?max_bdd_nodes:int -> unit -> t
(** [make ()] builds a budget; each limit is independent and optional.
    [timeout] is a relative wall-clock allowance in seconds, anchored at
    the call.  @raise Invalid_argument on a negative timeout or a
    non-positive cap. *)

val is_unlimited : t -> bool

val max_bdd_nodes : t -> int option
(** The BDD node cap, for handing to {!Logic.Bdd.manager}. *)

val check_deadline : t -> unit
(** Checkpoint: raises [Exhausted (Deadline _)] past the cutoff. *)

val charge_tuples : t -> int -> unit
(** [charge_tuples b n] spends [n] units of the tuple allowance; raises
    [Exhausted (Tuple_limit _)] once the cap is crossed. *)

val tuples_spent : t -> int
(** Units charged so far through {!charge_tuples} (0 when the budget
    carries no tuple cap — the no-cap path never counts).  Exact-search
    backends report it as their deterministic work measure. *)

val reason_to_string : reason -> string
val pp_reason : Format.formatter -> reason -> unit
