(** The structured result of a budgeted pipeline stage.

    Every heavy path that accepts a {!Budget.t} reports one of three
    rungs of the degradation ladder: the full algorithm completed
    ([Ok]), a cheaper fallback ran and its result is flagged with the
    budget that tripped ([Degraded]), or the stage stopped hard under a
    fail-on-exhaust policy ([Failed]). *)

type degradation = {
  stage : string;  (** which stage degraded: "mapper", "equiv", ... *)
  reason : Budget.reason;  (** the budget that tripped *)
  fallback : string;  (** what ran instead: "greedy", "sampled(4096)" *)
}

type 'a t =
  | Ok of 'a
  | Degraded of 'a * degradation list
  | Failed of Budget.reason

val value : 'a t -> 'a option
(** The carried result, if any rung produced one. *)

val degradations : 'a t -> degradation list

val label : 'a t -> string
(** ["ok"], ["degraded"] or ["failed"]. *)

val describe : 'a t -> string
(** One-line rendering, e.g.
    ["degraded(mapper: tuple-limit(5000) -> greedy)"]. *)

val describe_degradation : degradation -> string

val map : ('a -> 'b) -> 'a t -> 'b t

val add_degradations : degradation list -> 'a t -> 'a t
(** Fold further degradations into an outcome (an [Ok] becomes
    [Degraded]); the empty list is the identity. *)
