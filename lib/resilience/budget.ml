(* Resource budgets for the worst-case-exponential pipeline stages.

   A budget is checked cooperatively: the DP mapper, the BDD package and
   the oracle stages call [charge_tuples]/[check_deadline] at their own
   checkpoints, and a tripped budget surfaces as the typed [Exhausted]
   exception.  Callers decide the policy — fail, or degrade to a cheaper
   algorithm ({!Outcome} carries the result of that decision).

   Deadlines are anchored on the monotonic clock ({!Obs.Clock}), not
   [Unix.gettimeofday]: a wall-clock step (NTP adjustment, manual date
   change) must neither spuriously expire a request budget nor extend
   it.  Only the monotonic *difference* since [make] is compared against
   the allowance.

   Budgets are cheap when unlimited (a field test, no clock read) and a
   single budget value is meant to be used by one task at a time; the
   shared [unlimited] value is safe everywhere because it never mutates. *)

type reason =
  | Deadline of float  (* the wall-clock allowance, in seconds *)
  | Tuple_limit of int  (* the tuple-formation allowance *)
  | Bdd_node_limit of int  (* the BDD node allowance *)
  | Injected of string  (* chaos-injected exhaustion; the site name *)
  | Cache_invalid of string  (* unusable persistent cache file *)

exception Exhausted of reason

let reason_to_string = function
  | Deadline s -> Printf.sprintf "deadline(%gs)" s
  | Tuple_limit n -> Printf.sprintf "tuple-limit(%d)" n
  | Bdd_node_limit n -> Printf.sprintf "bdd-node-limit(%d)" n
  | Injected site -> Printf.sprintf "injected(%s)" site
  | Cache_invalid msg -> Printf.sprintf "cache-invalid(%s)" msg

let pp_reason fmt r = Format.pp_print_string fmt (reason_to_string r)

type t = {
  timeout : float option;  (* relative allowance, for error reporting *)
  deadline_ns : int64 option;  (* absolute monotonic-clock cutoff *)
  max_tuples : int option;
  mutable tuples : int;  (* charged so far; only when max_tuples is set *)
  max_bdd_nodes : int option;
}

let unlimited =
  { timeout = None; deadline_ns = None; max_tuples = None; tuples = 0;
    max_bdd_nodes = None }

(* Flag-level validation, shared by the CLI and the daemon's request
   parser: a zero or non-finite timeout and non-positive caps are user
   errors that would otherwise build an always-exhausted (or silently
   unlimited) budget.  [make] itself still accepts [timeout:0.0] — the
   fuzzer uses a pre-expired deadline to exercise the timeout path
   deterministically. *)
let validate ?timeout ?max_tuples ?max_bdd_nodes () =
  match (timeout, max_tuples, max_bdd_nodes) with
  | Some s, _, _ when not (Float.is_finite s) ->
      Error "timeout must be a finite number of seconds"
  | Some s, _, _ when s <= 0.0 ->
      Error "timeout must be positive (seconds)"
  | _, Some n, _ when n < 1 -> Error "max-tuples must be at least 1"
  | _, _, Some n when n < 1 -> Error "max-bdd-nodes must be at least 1"
  | _ -> Ok ()

let make ?timeout ?max_tuples ?max_bdd_nodes () =
  (match timeout with
  | Some s when s < 0.0 || not (Float.is_finite s) ->
      invalid_arg "Budget.make: negative timeout"
  | _ -> ());
  (match max_tuples with
  | Some n when n < 1 -> invalid_arg "Budget.make: max_tuples must be positive"
  | _ -> ());
  (match max_bdd_nodes with
  | Some n when n < 1 ->
      invalid_arg "Budget.make: max_bdd_nodes must be positive"
  | _ -> ());
  {
    timeout;
    deadline_ns =
      Option.map
        (fun s -> Int64.add (Obs.Clock.now_ns ()) (Int64.of_float (s *. 1e9)))
        timeout;
    max_tuples;
    tuples = 0;
    max_bdd_nodes;
  }

(* Every budget exhaustion funnels through [trip] so the flight
   recorder sees the event (which budget, at which checkpoint) even
   when the caller catches [Exhausted] and degrades — the recorder is
   how an operator learns *why* a request was degraded after the
   fact. *)
let trip reason =
  Obs.Flight.record ~detail:(reason_to_string reason) "budget";
  raise (Exhausted reason)

let is_unlimited b =
  b.deadline_ns = None && b.max_tuples = None && b.max_bdd_nodes = None

let max_bdd_nodes b = b.max_bdd_nodes

let check_deadline b =
  match b.deadline_ns with
  | None -> ()
  | Some cutoff ->
      if Int64.compare (Obs.Clock.now_ns ()) cutoff > 0 then
        trip (Deadline (Option.value b.timeout ~default:0.0))

let remaining_s b =
  match b.deadline_ns with
  | None -> None
  | Some cutoff ->
      Some (Obs.Clock.ns_to_s (Int64.sub cutoff (Obs.Clock.now_ns ())))

let charge_tuples b n =
  match b.max_tuples with
  | None -> ()
  | Some cap ->
      b.tuples <- b.tuples + n;
      if b.tuples > cap then trip (Tuple_limit cap)

let tuples_spent b = b.tuples
