(* Resource budgets for the worst-case-exponential pipeline stages.

   A budget is checked cooperatively: the DP mapper, the BDD package and
   the oracle stages call [charge_tuples]/[check_deadline] at their own
   checkpoints, and a tripped budget surfaces as the typed [Exhausted]
   exception.  Callers decide the policy — fail, or degrade to a cheaper
   algorithm ({!Outcome} carries the result of that decision).

   Budgets are cheap when unlimited (a field test, no clock read) and a
   single budget value is meant to be used by one task at a time; the
   shared [unlimited] value is safe everywhere because it never mutates. *)

type reason =
  | Deadline of float  (* the wall-clock allowance, in seconds *)
  | Tuple_limit of int  (* the tuple-formation allowance *)
  | Bdd_node_limit of int  (* the BDD node allowance *)
  | Injected of string  (* chaos-injected exhaustion; the site name *)
  | Cache_invalid of string  (* unusable persistent cache file *)

exception Exhausted of reason

let reason_to_string = function
  | Deadline s -> Printf.sprintf "deadline(%gs)" s
  | Tuple_limit n -> Printf.sprintf "tuple-limit(%d)" n
  | Bdd_node_limit n -> Printf.sprintf "bdd-node-limit(%d)" n
  | Injected site -> Printf.sprintf "injected(%s)" site
  | Cache_invalid msg -> Printf.sprintf "cache-invalid(%s)" msg

let pp_reason fmt r = Format.pp_print_string fmt (reason_to_string r)

type t = {
  timeout : float option;  (* relative allowance, for error reporting *)
  deadline : float option;  (* absolute Unix.gettimeofday cutoff *)
  max_tuples : int option;
  mutable tuples : int;  (* charged so far; only when max_tuples is set *)
  max_bdd_nodes : int option;
}

let unlimited =
  { timeout = None; deadline = None; max_tuples = None; tuples = 0;
    max_bdd_nodes = None }

let make ?timeout ?max_tuples ?max_bdd_nodes () =
  (match timeout with
  | Some s when s < 0.0 -> invalid_arg "Budget.make: negative timeout"
  | _ -> ());
  (match max_tuples with
  | Some n when n < 1 -> invalid_arg "Budget.make: max_tuples must be positive"
  | _ -> ());
  (match max_bdd_nodes with
  | Some n when n < 1 ->
      invalid_arg "Budget.make: max_bdd_nodes must be positive"
  | _ -> ());
  {
    timeout;
    deadline = Option.map (fun s -> Unix.gettimeofday () +. s) timeout;
    max_tuples;
    tuples = 0;
    max_bdd_nodes;
  }

let is_unlimited b =
  b.deadline = None && b.max_tuples = None && b.max_bdd_nodes = None

let max_bdd_nodes b = b.max_bdd_nodes

let check_deadline b =
  match b.deadline with
  | None -> ()
  | Some cutoff ->
      if Unix.gettimeofday () > cutoff then
        raise (Exhausted (Deadline (Option.value b.timeout ~default:0.0)))

let charge_tuples b n =
  match b.max_tuples with
  | None -> ()
  | Some cap ->
      b.tuples <- b.tuples + n;
      if b.tuples > cap then raise (Exhausted (Tuple_limit cap))

let tuples_spent b = b.tuples
