(* The structured result of a budgeted pipeline stage: the degradation
   ladder's rungs.  [Ok] is the full algorithm; [Degraded] carries the
   fallback's result plus a record of every rung that was skipped and
   why; [Failed] is the hard stop under an [`Fail] exhaustion policy. *)

type degradation = {
  stage : string;  (* "mapper", "equiv", ... *)
  reason : Budget.reason;  (* the budget that tripped *)
  fallback : string;  (* what ran instead: "greedy", "sampled(4096)" *)
}

type 'a t =
  | Ok of 'a
  | Degraded of 'a * degradation list
  | Failed of Budget.reason

let value = function Ok v | Degraded (v, _) -> Some v | Failed _ -> None

let degradations = function
  | Ok _ | Failed _ -> []
  | Degraded (_, ds) -> ds

let label = function
  | Ok _ -> "ok"
  | Degraded _ -> "degraded"
  | Failed _ -> "failed"

let describe_degradation d =
  Printf.sprintf "%s: %s -> %s" d.stage
    (Budget.reason_to_string d.reason)
    d.fallback

let describe = function
  | Ok _ -> "ok"
  | Degraded (_, ds) ->
      Printf.sprintf "degraded(%s)"
        (String.concat "; " (List.map describe_degradation ds))
  | Failed r -> Printf.sprintf "failed(%s)" (Budget.reason_to_string r)

let map f = function
  | Ok v -> Ok (f v)
  | Degraded (v, ds) -> Degraded (f v, ds)
  | Failed r -> Failed r

let add_degradations ds o =
  if ds = [] then o
  else
    match o with
    | Ok v -> Degraded (v, ds)
    | Degraded (v, ds') -> Degraded (v, ds' @ ds)
    | Failed r -> Failed r
