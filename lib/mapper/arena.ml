(* Flat arena support for the DP hot core: bit-packed tuple algebra and
   per-domain scratch buffers.  See arena.mli and docs/arena.md for the
   packing layout, the saturation (check-and-fall-back, never clamp)
   rules, and the exactness argument; test/test_arena.ml proves the
   packed algebra agrees with the boxed one and that the filtered
   engine is frontier-for-frontier identical to the legacy path. *)

let m_overflow = Obs.Metrics.counter "arena.overflow"
let m_filtered = Obs.Metrics.counter "arena.filtered"
(* [arena.filtered] is landed in one batch per map call by the engine
   (which owns the per-sweep count); the handle is registered here so
   the metric exists — at its documented name — even before the first
   instrumented map runs. *)
let _ = m_filtered

module Packed = struct
  let invalid = -1

  (* Word 0: weighted[0..29] depth[30..39] raw[40..61]. *)
  let bits_weighted = 30
  let bits_depth = 10
  let max_weighted = (1 lsl bits_weighted) - 1
  let max_depth = (1 lsl bits_depth) - 1
  let max_raw = (1 lsl 22) - 1
  let sh_depth = bits_weighted
  let sh_raw = bits_weighted + bits_depth
  let mask_weighted = max_weighted
  let mask_depth = max_depth

  (* Word 1: w[0..8] h[9..17] p_dis[18..31] disch[32..47] par_b[48]
     has_pi[49]. *)
  let bits_w = 9
  let bits_h = 9
  let bits_p_dis = 14
  let bits_disch = 16
  let max_w = (1 lsl bits_w) - 1
  let max_h = (1 lsl bits_h) - 1
  let max_p_dis = (1 lsl bits_p_dis) - 1
  let max_disch = (1 lsl bits_disch) - 1
  let sh_h = bits_w
  let sh_p_dis = bits_w + bits_h
  let sh_disch = sh_p_dis + bits_p_dis
  let sh_par_b = sh_disch + bits_disch
  let sh_has_pi = sh_par_b + 1
  let mask_w = max_w
  let mask_h = max_h
  let mask_p_dis = max_p_dis
  let mask_disch = max_disch

  let weighted w0 = w0 land mask_weighted
  let depth w0 = (w0 lsr sh_depth) land mask_depth
  let raw w0 = w0 lsr sh_raw
  let w w1 = w1 land mask_w
  let h w1 = (w1 lsr sh_h) land mask_h
  let p_dis w1 = (w1 lsr sh_p_dis) land mask_p_dis
  let disch w1 = (w1 lsr sh_disch) land mask_disch
  let par_b w1 = (w1 lsr sh_par_b) land 1 = 1
  let has_pi w1 = (w1 lsr sh_has_pi) land 1 = 1

  let in_range v max = v >= 0 && v <= max

  let mk0 ~weighted ~depth ~raw =
    if
      in_range weighted max_weighted
      && in_range depth max_depth
      && in_range raw max_raw
    then weighted lor (depth lsl sh_depth) lor (raw lsl sh_raw)
    else invalid

  let mk1 ~w ~h ~p_dis ~disch ~par_b ~has_pi =
    if
      in_range w max_w && in_range h max_h
      && in_range p_dis max_p_dis
      && in_range disch max_disch
    then
      w lor (h lsl sh_h) lor (p_dis lsl sh_p_dis) lor (disch lsl sh_disch)
      lor ((if par_b then 1 else 0) lsl sh_par_b)
      lor ((if has_pi then 1 else 0) lsl sh_has_pi)
    else invalid

  let pack0 (s : Soi_rules.sol) =
    mk0 ~weighted:s.Soi_rules.value.Cost.weighted
      ~depth:s.Soi_rules.value.Cost.depth ~raw:s.Soi_rules.value.Cost.raw

  let pack1 (s : Soi_rules.sol) =
    mk1 ~w:s.Soi_rules.w ~h:s.Soi_rules.h ~p_dis:s.Soi_rules.p_dis
      ~disch:s.Soi_rules.disch ~par_b:s.Soi_rules.par_b
      ~has_pi:s.Soi_rules.has_pi

  (* Placeholder structure: packed words carry scalars only. *)
  let dummy_structure =
    Domino.Pdn.Leaf (Domino.Pdn.S_pi { input = 0; positive = true })

  let unpack_with ~structure ~w0 ~w1 =
    {
      Soi_rules.w = w w1;
      h = h w1;
      value = { Cost.weighted = weighted w0; depth = depth w0; raw = raw w0 };
      p_dis = p_dis w1;
      par_b = par_b w1;
      has_pi = has_pi w1;
      disch = disch w1;
      structure;
    }

  let unpack ~w0 ~w1 = unpack_with ~structure:dummy_structure ~w0 ~w1

  let dominates ~depth_matters a0 a1 b0 b1 =
    par_b a1 = par_b b1
    && ((not (has_pi a1)) || has_pi b1)
    && weighted a0 <= weighted b0
    && ((not depth_matters) || depth a0 <= depth b0)
    && p_dis a1 <= p_dis b1

  let or0 a0 b0 =
    if a0 < 0 || b0 < 0 then invalid
    else
      mk0
        ~weighted:(weighted a0 + weighted b0)
        ~depth:(max (depth a0) (depth b0))
        ~raw:(raw a0 + raw b0)

  let or1 a1 b1 =
    if a1 < 0 || b1 < 0 then invalid
    else
      mk1 ~w:(w a1 + w b1) ~h:(max (h a1) (h b1))
        ~p_dis:(p_dis a1 + p_dis b1)
        ~disch:(disch a1 + disch b1)
        ~par_b:true
        ~has_pi:(has_pi a1 || has_pi b1)

  let committed top1 = if par_b top1 then p_dis top1 + 1 else 0

  let and_soi0 ~discharge ~top0 ~top1 ~bottom0 =
    if top0 < 0 || top1 < 0 || bottom0 < 0 then invalid
    else
      let c = committed top1 in
      mk0
        ~weighted:(weighted top0 + weighted bottom0 + (c * discharge))
        ~depth:(max (depth top0) (depth bottom0))
        ~raw:(raw top0 + raw bottom0 + c)

  let and_soi1 ~top1 ~bottom1 =
    if top1 < 0 || bottom1 < 0 then invalid
    else
      let c = committed top1 in
      mk1
        ~w:(max (w top1) (w bottom1))
        ~h:(h top1 + h bottom1)
        ~p_dis:
          (if par_b top1 then p_dis bottom1
           else p_dis top1 + 1 + p_dis bottom1)
        ~disch:(disch top1 + disch bottom1 + c)
        ~par_b:(par_b bottom1)
        ~has_pi:(has_pi top1 || has_pi bottom1)

  let and_bulk0 ~top0 ~bottom0 =
    if top0 < 0 || bottom0 < 0 then invalid
    else
      mk0
        ~weighted:(weighted top0 + weighted bottom0)
        ~depth:(max (depth top0) (depth bottom0))
        ~raw:(raw top0 + raw bottom0)

  let and_bulk1 ~top1 ~bottom1 =
    if top1 < 0 || bottom1 < 0 then invalid
    else
      mk1
        ~w:(max (w top1) (w bottom1))
        ~h:(h top1 + h bottom1)
        ~p_dis:0
        ~disch:(disch top1 + disch bottom1)
        ~par_b:false
        ~has_pi:(has_pi top1 || has_pi bottom1)
end

(* ---------- flat network view ---------- *)

module Net = struct
  type t = { kinds : Bytes.t; f0 : int array; f1 : int array }

  let encode = function
    | Unate.Unetwork.F_node m -> m
    | Unate.Unetwork.F_const false -> -1
    | Unate.Unetwork.F_const true -> -2
    | Unate.Unetwork.F_lit { input; positive } ->
        -(3 + (input * 2) + if positive then 1 else 0)

  let is_node e = e >= 0
  let is_const e = e = -1 || e = -2
  let const_value e = e = -2
  let lit_input e = (-e - 3) lsr 1
  let lit_positive e = (-e - 3) land 1 = 1

  let of_unetwork u =
    let n = Unate.Unetwork.node_count u in
    let kinds = Bytes.create n in
    let f0 = Array.make n 0 and f1 = Array.make n 0 in
    for id = 0 to n - 1 do
      let nd = Unate.Unetwork.node u id in
      Bytes.unsafe_set kinds id
        (match nd.Unate.Unetwork.kind with
        | Unate.Unetwork.U_and -> '\001'
        | Unate.Unetwork.U_or -> '\000');
      f0.(id) <- encode nd.Unate.Unetwork.fanin0;
      f1.(id) <- encode nd.Unate.Unetwork.fanin1
    done;
    { kinds; f0; f1 }

  let node_count t = Bytes.length t.kinds
  let is_and t id = Bytes.unsafe_get t.kinds id = '\001'
  let fin0 t id = t.f0.(id)
  let fin1 t id = t.f1.(id)
end

(* ---------- per-domain scratch ---------- *)

type ctx = {
  (* packed fanin option lists of the node under construction *)
  mutable a0 : int array;
  mutable a1 : int array;
  mutable b0 : int array;
  mutable b1 : int array;
  (* packed frontier mirror: per-slot counts (-1 = dirty, price boxed)
     and a flat [slot * cap + k] word store *)
  mutable mn : int array;
  mutable m0 : int array;
  mutable m1 : int array;
  mutable slots : int;  (* live slot count = w_max * h_max *)
  mutable cap : int;  (* per-slot mirror capacity *)
  mutable w_max : int;
  mutable h_max : int;
  mutable overflows : int;
}

let fresh_ctx () =
  {
    a0 = Array.make 64 Packed.invalid;
    a1 = Array.make 64 Packed.invalid;
    b0 = Array.make 64 Packed.invalid;
    b1 = Array.make 64 Packed.invalid;
    mn = Array.make 64 0;
    m0 = Array.make 256 Packed.invalid;
    m1 = Array.make 256 Packed.invalid;
    slots = 0;
    cap = 4;
    w_max = 0;
    h_max = 0;
    overflows = 0;
  }

let dls_key = Domain.DLS.new_key fresh_ctx
let ctx () = Domain.DLS.get dls_key

(* Bounding [w_max * h_max] keeps the per-domain frontier mirror small
   (slots * cap words per array); every option set in the repo is far
   below it. *)
let max_slots = 4096

let eligible ~w_max ~h_max =
  w_max <= Packed.max_w && h_max <= Packed.max_h && w_max * h_max <= max_slots

let note_overflow ctx =
  ctx.overflows <- ctx.overflows + 1;
  Obs.Metrics.incr m_overflow

let overflow_count ctx = ctx.overflows

let grow a n init =
  if Array.length a >= n then a
  else Array.make (max n (2 * Array.length a)) init

let load ctx which opts =
  let n = List.length opts in
  (match which with
  | `A ->
      ctx.a0 <- grow ctx.a0 n Packed.invalid;
      ctx.a1 <- grow ctx.a1 n Packed.invalid
  | `B ->
      ctx.b0 <- grow ctx.b0 n Packed.invalid;
      ctx.b1 <- grow ctx.b1 n Packed.invalid);
  let d0, d1 =
    match which with `A -> (ctx.a0, ctx.a1) | `B -> (ctx.b0, ctx.b1)
  in
  List.iteri
    (fun i s ->
      let w0 = Packed.pack0 s and w1 = Packed.pack1 s in
      if w0 < 0 || w1 < 0 then begin
        note_overflow ctx;
        d0.(i) <- Packed.invalid;
        d1.(i) <- Packed.invalid
      end
      else begin
        d0.(i) <- w0;
        d1.(i) <- w1
      end)
    opts

let begin_node ctx ~w_max ~h_max ~opts0 ~opts1 =
  let slots = w_max * h_max in
  (* The mirror holds post-cap frontiers: at most pareto_width tuples
     under each of the (up to three) cap orders.  8 covers every
     sampled pareto_width; refresh marks longer slots dirty. *)
  let cap = max ctx.cap 8 in
  ctx.mn <- grow ctx.mn slots 0;
  ctx.m0 <- grow ctx.m0 (slots * cap) Packed.invalid;
  ctx.m1 <- grow ctx.m1 (slots * cap) Packed.invalid;
  ctx.slots <- slots;
  ctx.cap <- cap;
  ctx.w_max <- w_max;
  ctx.h_max <- h_max;
  Array.fill ctx.mn 0 slots 0;
  load ctx `A opts0;
  load ctx `B opts1

let refresh_slot ctx ~slot sols =
  let base = slot * ctx.cap in
  let ok = ref true in
  let i = ref 0 in
  List.iter
    (fun s ->
      if !i >= ctx.cap then ok := false
      else begin
        let w0 = Packed.pack0 s and w1 = Packed.pack1 s in
        if w0 < 0 || w1 < 0 then begin
          note_overflow ctx;
          ok := false
        end
        else begin
          ctx.m0.(base + !i) <- w0;
          ctx.m1.(base + !i) <- w1
        end;
        incr i
      end)
    sols;
  ctx.mn.(slot) <- (if !ok then !i else -1)

type verdict = Skip_pruned | Insert of { c0 : int; c1 : int } | Run_boxed

(* Three-way comparisons mirroring the engine's orders, on packed
   words.  [k] is a kept tuple, [c] the candidate; each returns the
   sign of [compare_x kept candidate]. *)

let cmp_int a b = if a < b then -1 else if a > b then 1 else 0
let cmp_bool a b = cmp_int (if a then 1 else 0) (if b then 1 else 0)

let inline_cmp ~depth_factor k0 k1 c0 c1 =
  let kk = (depth_factor * Packed.depth k0) + Packed.weighted k0 in
  let kc = (depth_factor * Packed.depth c0) + Packed.weighted c0 in
  match cmp_int kk kc with
  | 0 -> (
      match cmp_int (Packed.p_dis k1) (Packed.p_dis c1) with
      | 0 -> (
          match cmp_int (Packed.raw k0) (Packed.raw c0) with
          | 0 -> cmp_bool (Packed.has_pi c1) (Packed.has_pi k1)
          | c -> c)
      | c -> c)
  | c -> c

let formed_cmp ~depth_factor ~clocked ~discharge ~grounded k0 k1 c0 c1 =
  let fkey w0 w1 =
    (depth_factor * Packed.depth w0)
    + Packed.weighted w0
    + (if Packed.has_pi w1 then clocked else 0)
    + if grounded then 0 else discharge * Packed.p_dis w1
  in
  match cmp_int (fkey k0 k1) (fkey c0 c1) with
  | 0 -> (
      match cmp_int (Packed.p_dis k1) (Packed.p_dis c1) with
      | 0 -> (
          match cmp_int (Packed.raw k0) (Packed.raw c0) with
          | 0 -> cmp_bool (Packed.has_pi k1) (Packed.has_pi c1)
          | c -> c)
      | c -> c)
  | c -> c

let light_cmp k0 k1 c0 c1 =
  match cmp_int (Packed.weighted k0) (Packed.weighted c0) with
  | 0 -> (
      match cmp_int (Packed.depth k0) (Packed.depth c0) with
      | 0 -> (
          match cmp_int (Packed.p_dis k1) (Packed.p_dis c1) with
          | 0 -> (
              match cmp_int (Packed.raw k0) (Packed.raw c0) with
              | 0 -> cmp_bool (Packed.has_pi c1) (Packed.has_pi k1)
              | c -> c)
          | c -> c)
      | c -> c)
  | c -> c

let candidate ctx ~depth_factor ~clocked ~discharge ~grounded ~pareto ~op ~i0
    ~i1 =
  let a0 = ctx.a0.(i0) and a1 = ctx.a1.(i0) in
  let b0 = ctx.b0.(i1) and b1 = ctx.b1.(i1) in
  if a0 < 0 || b0 < 0 then Run_boxed
  else begin
    (* Word 1 first: the candidate's w/h live there, and a bound-reject
       — the most common skip — then never pays for the cost word. *)
    let c1 =
      match op with
      | `Or -> Packed.or1 a1 b1
      | `And_soi -> Packed.and_soi1 ~top1:a1 ~bottom1:b1
      | `And_soi_rev -> Packed.and_soi1 ~top1:b1 ~bottom1:a1
      | `And_bulk -> Packed.and_bulk1 ~top1:a1 ~bottom1:b1
    in
    if c1 < 0 then begin
      note_overflow ctx;
      Run_boxed
    end
    else begin
      let cw = Packed.w c1 and ch = Packed.h c1 in
      if cw > ctx.w_max || ch > ctx.h_max then
        (* The boxed path would bound-reject: one pruned tuple. *)
        Skip_pruned
      else begin
        let c0 =
          match op with
          | `Or -> Packed.or0 a0 b0
          | `And_soi -> Packed.and_soi0 ~discharge ~top0:a0 ~top1:a1 ~bottom0:b0
          | `And_soi_rev ->
              Packed.and_soi0 ~discharge ~top0:b0 ~top1:b1 ~bottom0:a0
          | `And_bulk -> Packed.and_bulk0 ~top0:a0 ~bottom0:b0
        in
        if c0 < 0 then begin
          note_overflow ctx;
          Run_boxed
        end
        else begin
        let slot = ((cw - 1) * ctx.h_max) + (ch - 1) in
        let n = ctx.mn.(slot) in
        if n < 0 then Run_boxed
        else begin
          let base = slot * ctx.cap in
          let depth_matters = depth_factor <> 0 in
          (* Pass 1: is the candidate dominated by a kept tuple?  The
             boxed [consider] rejects it outright. *)
          let dominated = ref false in
          let k = ref 0 in
          while (not !dominated) && !k < n do
            if
              Packed.dominates ~depth_matters
                ctx.m0.(base + !k)
                ctx.m1.(base + !k)
                c0 c1
            then dominated := true;
            incr k
          done;
          if !dominated then Skip_pruned
          else if n < pareto then
            (* The frontier has room: insertion changes it.  The packed
               words are exact and dominance is already decided, so the
               engine can build the survivor straight from them. *)
            Insert { c0; c1 }
          else begin
            (* Cap ranking: the candidate is a provable no-op iff it
               evicts nothing (dominates no kept tuple) and ranks
               outside the top [pareto] under every cap order; then the
               capped frontier equals the kept set exactly and the
               boxed path would count one truncated tuple.  The
               stable-sort tie rule: the candidate follows every
               kept tuple strictly smaller under the inline order, and
               precedes inline-equal ones; under the formed/light
               resorts of the inline-sorted list, a kept tuple ordered
               equal precedes the candidate iff it was strictly
               smaller inline. *)
            let evicts = ref false in
            let idx_inline = ref 0 in
            let idx_formed = ref 0 in
            let idx_light = ref 0 in
            let k = ref 0 in
            while (not !evicts) && !k < n do
              let k0 = ctx.m0.(base + !k) and k1 = ctx.m1.(base + !k) in
              if Packed.dominates ~depth_matters c0 c1 k0 k1 then
                evicts := true
              else begin
                let il = inline_cmp ~depth_factor k0 k1 c0 c1 < 0 in
                if il then incr idx_inline;
                (match
                   formed_cmp ~depth_factor ~clocked ~discharge ~grounded k0
                     k1 c0 c1
                 with
                | c when c < 0 -> incr idx_formed
                | 0 -> if il then incr idx_formed
                | _ -> ());
                if depth_matters then
                  match light_cmp k0 k1 c0 c1 with
                  | c when c < 0 -> incr idx_light
                  | 0 -> if il then incr idx_light
                  | _ -> ()
              end;
              incr k
            done;
            if
              (not !evicts)
              && !idx_inline >= pareto && !idx_formed >= pareto
              && ((not depth_matters) || !idx_light >= pareto)
            then Skip_pruned
            else Insert { c0; c1 }
          end
        end
      end
    end
  end
  end
