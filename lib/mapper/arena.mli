(** Flat, allocation-free support for the DP hot core.

    The engine's combination loop historically allocated one
    {!Soi_rules.sol} record — a boxed cost value and a PDN tree node —
    for {e every} fanin-tuple combination, then threw most of them away:
    a candidate that is dominated, out of the [{W, H}] bounds, or
    destined to be truncated off the frontier cap allocates exactly like
    a winner.  PR 9's per-request [service.gc.*] deltas made that cost
    visible per mapped cone.

    This module packs the scalar coordinates of a DP tuple into two
    immediate ints ({!Packed}) and provides the per-domain scratch
    buffers ({!ctx}) the engine uses to price a candidate — combine,
    bounds check, domination check, and frontier-cap ranking — entirely
    on unboxed integers.  Only candidates that provably change a
    frontier reach the boxed {!Soi_rules} constructors, so the arena
    path allocates per {e survivor}, not per combination.

    {2 Exactness, not approximation}

    The packed filter is a sound pre-filter, never a decision-maker: it
    skips a candidate only when the packed algebra {e proves} the boxed
    [consider] would leave the frontier unchanged (see
    {!val-skip_candidate}).  Anything it cannot prove — a field
    overflowing its packed width, an unpackable frontier element — falls
    through to the boxed path.  Mapping results are therefore
    byte-identical to the legacy core by construction; [test/test_arena.ml]
    proves it frontier-for-frontier across random nets and the paper
    suite (see docs/arena.md for the packing layout and the argument).

    {2 Saturation semantics}

    Fields are {e checked}, not clamped: a coordinate that exceeds its
    packed width would corrupt comparisons silently, so packing fails
    (returns the invalid sentinel) and the engine prices that candidate
    on the boxed path.  The [arena.overflow] metric counts how often
    that rescue fires (zero on every workload in the repo). *)

(** {1 Packed tuples}

    Two 63-bit immediate ints per tuple.

    Word 0 — the cost value ({!Cost.value}):
    {v
    bits  0..29   weighted   (30 bits, composes by +)
    bits 30..39   depth      (10 bits, composes by max)
    bits 40..61   raw        (22 bits, composes by +)
    v}

    Word 1 — the shape coordinates:
    {v
    bits  0..8    w          (9 bits: sums of two in-range widths fit)
    bits  9..17   h          (9 bits)
    bits 18..31   p_dis      (14 bits)
    bits 32..47   disch      (16 bits)
    bit  48       par_b
    bit  49       has_pi
    v} *)
module Packed : sig
  val invalid : int
  (** The sentinel for "could not pack" ([-1]; valid words are
      non-negative). *)

  val max_weighted : int
  val max_depth : int
  val max_raw : int
  val max_w : int
  val max_h : int
  val max_p_dis : int
  val max_disch : int

  val pack0 : Soi_rules.sol -> int
  (** Word 0 of [s], or {!invalid} when a cost coordinate exceeds its
      field. *)

  val pack1 : Soi_rules.sol -> int
  (** Word 1 of [s], or {!invalid} when a shape coordinate exceeds its
      field.  [w]/[h] are packed against the full 9-bit fields; the
      engine's own bounds check against [w_max]/[h_max] happens on the
      unpacked values. *)

  (** Field accessors (word arguments must be valid). *)

  val weighted : int -> int
  val depth : int -> int
  val raw : int -> int
  val w : int -> int
  val h : int -> int
  val p_dis : int -> int
  val disch : int -> int
  val par_b : int -> bool
  val has_pi : int -> bool

  val unpack : w0:int -> w1:int -> Soi_rules.sol
  (** Reconstruct the scalar coordinates (test aid; the structure is a
      placeholder leaf — packed words do not carry PDN trees). *)

  val unpack_with : structure:Domino.Pdn.t -> w0:int -> w1:int -> Soi_rules.sol
  (** {!unpack} with the caller's PDN tree — the engine's [Insert] fast
      path materialises survivors this way, so the packed combination
      is the only scalar arithmetic a survivor pays. *)

  val dominates : depth_matters:bool -> int -> int -> int -> int -> bool
  (** [dominates ~depth_matters a0 a1 b0 b1] is the engine's dominance
      predicate on packed words: equal [par_b], the [has_pi]
      implication, and componentwise [<=] on [weighted] (and [depth]
      when [depth_matters]) and [p_dis].  Agrees with the boxed
      predicate on every pair of packable tuples
      (test/test_arena.ml). *)

  (** Packed combination rules, mirroring {!Soi_rules}.  Each returns
      one word; callers pass both operands' words.  The result is
      {!invalid} when a field overflows, or when either operand is
      {!invalid}. *)

  val or0 : int -> int -> int
  val or1 : int -> int -> int

  val and_soi0 : discharge:int -> top0:int -> top1:int -> bottom0:int -> int
  (** Word 0 of the SOI series composition: the committed-discharge
      term reads the top operand's [par_b]/[p_dis] from [top1]. *)

  val and_soi1 : top1:int -> bottom1:int -> int
  val and_bulk0 : top0:int -> bottom0:int -> int
  val and_bulk1 : top1:int -> bottom1:int -> int
end

(** {1 Flat network view}

    An int-indexed mirror of a {!Unate.Unetwork.t}, built once per
    mapping call: node kinds in a byte array and fanins encoded into
    plain ints, so the sweep's per-combination dispatch and the fanin
    option enumeration never touch boxed [fin] constructors. *)
module Net : sig
  type t

  val of_unetwork : Unate.Unetwork.t -> t
  val node_count : t -> int
  val is_and : t -> int -> bool

  (** Encoded fanins: [>= 0] is an internal node id; [-1]/[-2] are the
      constants false/true; anything below is a primary-input literal. *)

  val fin0 : t -> int -> int
  val fin1 : t -> int -> int
  val encode : Unate.Unetwork.fin -> int
  val is_node : int -> bool
  val is_const : int -> bool
  val const_value : int -> bool
  val lit_input : int -> int
  val lit_positive : int -> bool
end

(** {1 Per-domain scratch}

    One [ctx] per domain (via [Domain.DLS]), holding the packed copies
    of the current node's fanin option lists and the packed mirror of
    its frontier slots.  Buffers grow geometrically and are reused
    across nodes, cones, and mapping calls — steady-state, a mapping
    call allocates nothing here. *)

type ctx

val ctx : unit -> ctx
(** The calling domain's scratch context. *)

val max_slots : int
(** Upper bound on [w_max * h_max] the scratch mirror will serve
    ([4096]); larger slot grids would make the per-domain mirror
    arrays disproportionate. *)

val eligible : w_max:int -> h_max:int -> bool
(** Whether the packed filter can serve these bounds: both within the
    9-bit packed fields and [w_max * h_max <= max_slots].  Ineligible
    options simply run the boxed path. *)

val begin_node :
  ctx ->
  w_max:int ->
  h_max:int ->
  opts0:Soi_rules.sol list ->
  opts1:Soi_rules.sol list ->
  unit
(** Load a node's two fanin option lists into packed form (unpackable
    options are marked {!Packed.invalid} and price boxed) and reset the
    frontier mirror to all-empty — matching the engine's fresh slot
    array. *)

type verdict =
  | Skip_pruned
      (** The boxed [consider] would reject or cap-drop this candidate
          and leave the frontier unchanged: skip it, count one pruned
          tuple. *)
  | Insert of { c0 : int; c1 : int }
      (** The candidate is within bounds, packed exactly into
          [(c0, c1)], and not dominated by the slot's (clean) mirrored
          frontier: the engine materialises it via
          {!Packed.unpack_with} and inserts without re-checking
          dominance. *)
  | Run_boxed
      (** No packed verdict (an operand or the slot's mirror is not
          packable): run the fully boxed path, then {!refresh_slot}. *)

val candidate :
  ctx ->
  depth_factor:int ->
  clocked:int ->
  discharge:int ->
  grounded:bool ->
  pareto:int ->
  op:[ `Or | `And_soi | `And_soi_rev | `And_bulk ] ->
  i0:int ->
  i1:int ->
  verdict
(** Price candidate [opts0.(i0) ⊗ opts1.(i1)] on packed words.
    [Skip_pruned] is returned exactly when the boxed [consider] would
    (a) reject the candidate for exceeding [w_max]/[h_max], (b) reject
    it as dominated by a kept tuple, or (c) insert it, evict nothing,
    and truncate it straight off the frontier cap — the three cases
    that leave [entry.table] unchanged and bump the pruned count by
    one.  For [`And_soi]/[`And_bulk], [opts0.(i0)] is the top operand;
    [`And_soi_rev] is the swapped series order ([opts1.(i1)] on
    top). *)

val refresh_slot : ctx -> slot:int -> Soi_rules.sol list -> unit
(** Re-pack frontier slot [slot] from the boxed table after a boxed
    [consider] ran.  A slot containing an unpackable tuple is marked
    dirty: candidates aimed at it run boxed until it is refreshed
    clean. *)

val overflow_count : ctx -> int
(** Lifetime count of pack overflows observed by this domain's context
    (also published as the [arena.overflow] metric). *)
