type point = {
  label : string;
  cost : Cost.model;
  counts : Domino.Circuit.counts;
  delay : float;
  efficient : bool;
}

let default_portfolio =
  [
    ("area", Cost.area);
    ("clock-k2", Cost.clock_weighted 2);
    ("clock-k4", Cost.clock_weighted 4);
    ("depth", Cost.depth_soi);
  ]

let dominates a b =
  let ca = a.counts and cb = b.counts in
  ca.Domino.Circuit.t_total <= cb.Domino.Circuit.t_total
  && ca.Domino.Circuit.levels <= cb.Domino.Circuit.levels
  && ca.Domino.Circuit.t_clock <= cb.Domino.Circuit.t_clock
  && (ca.Domino.Circuit.t_total < cb.Domino.Circuit.t_total
     || ca.Domino.Circuit.levels < cb.Domino.Circuit.levels
     || ca.Domino.Circuit.t_clock < cb.Domino.Circuit.t_clock)

let sweep ?memo ?(portfolio = default_portfolio) ?(w_max = 5) ?(h_max = 8)
    ?(rewrite = 0) net =
  (* Portfolio jobs are independent full mapping runs over the same
     (read-only) source network; fan them out on the default pool.
     Result order is portfolio order, so the Pareto marking below and
     the rendered table are identical at any worker count.

     The whole portfolio shares one memo table (fresh unless the caller
     passes a warm one): jobs with distinct cost models never share
     entries — the model scalars are part of the key — so the intra-job
     structural repetition and any caller-supplied warmth are the wins,
     and the hit pattern stays schedule-independent. *)
  let memo = match memo with Some m -> m | None -> Memo.create () in
  let raw =
    Parallel.Pool.map_list_default
      (fun (label, cost) ->
        Obs.Trace.with_span ~cat:"mapper" "multi.point"
          ~args:(fun () -> [ ("objective", label) ])
        @@ fun () ->
        let r =
          Algorithms.run ~memo ~cost ~w_max ~h_max ~rewrite
            Algorithms.Soi_domino_map net
        in
        {
          label;
          cost;
          counts = r.Algorithms.counts;
          delay =
            (Domino.Timing.analyze r.Algorithms.circuit).Domino.Timing.critical_delay;
          efficient = false;
        })
      portfolio
  in
  List.map
    (fun p -> { p with efficient = not (List.exists (fun q -> dominates q p) raw) })
    raw

let render points =
  let buf = Buffer.create 512 in
  Buffer.add_string buf
    (Printf.sprintf "%-10s %8s %7s %7s %7s %8s %s\n" "objective" "Ttotal" "Tdisch"
       "levels" "Tclock" "delay" "pareto");
  List.iter
    (fun p ->
      Buffer.add_string buf
        (Printf.sprintf "%-10s %8d %7d %7d %7d %8.2f %s\n" p.label
           p.counts.Domino.Circuit.t_total p.counts.Domino.Circuit.t_disch
           p.counts.Domino.Circuit.levels p.counts.Domino.Circuit.t_clock p.delay
           (if p.efficient then "*" else "")))
    points;
  Buffer.contents buf
