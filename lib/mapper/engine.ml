open Unate
open Domino

type style = Bulk | Soi

type options = {
  w_max : int;
  h_max : int;
  style : style;
  cost : Cost.model;
  both_orders : bool;
  grounded_at_foot : bool;
  pareto_width : int;
}

let default_options =
  {
    w_max = 5;
    h_max = 8;
    style = Soi;
    cost = Cost.area;
    both_orders = true;
    grounded_at_foot = true;
    pareto_width = 1;
  }

type stats = {
  nodes_processed : int;
  tuples_kept : int;
  combinations_tried : int;
  gates_formed : int;
}

(* Which pricing core runs the combination loop.  The arena filter is a
   sound pre-filter over the boxed DP (see Arena): results are
   byte-identical either way, so [`Auto] simply asks for it whenever
   the bounds fit the packed fields. *)
type core = [ `Auto | `Arena | `Boxed ]

(* Gate formed for a unate node, before circuit ids are assigned. *)
type gate_info = {
  gi_structure : Pdn.t;
  gi_footed : bool;
  gi_level : int;
  gi_value : Cost.value;  (* formation cost, overhead and discharges included *)
  gi_disch : int;  (* discharge transistors this gate will carry *)
}

type entry = {
  table : Soi_rules.sol list array;  (* (w-1) * h_max + (h-1); Pareto set *)
  mutable gate : gate_info option;
}

(* Mapper observability (see docs/observability.md).  Counts are
   accumulated in plain local refs during the sweep and flushed to the
   registry once per [map] call, so the DP hot loop never touches shared
   state; everything here is work-derived and schedule-independent. *)
let m_nodes = Obs.Metrics.counter "mapper.nodes"
let m_combinations = Obs.Metrics.counter "mapper.combinations"
let m_tuples_kept = Obs.Metrics.counter "mapper.tuples_kept"
let m_tuples_pruned = Obs.Metrics.counter "mapper.tuples_pruned"
let m_gates = Obs.Metrics.counter "mapper.gates"
let m_discharges = Obs.Metrics.counter "mapper.discharges"
let m_greedy_fallback = Obs.Metrics.counter "mapper.greedy_fallback"

(* Same handle Arena registers; the engine batches the per-skip counts
   locally and lands them here once per map call — a sharded atomic
   fetch-and-add per skipped candidate would cost more than the boxed
   combine the skip saves. *)
let m_arena_filtered = Obs.Metrics.counter "arena.filtered"

let h_frontier =
  Obs.Metrics.histogram ~buckets:[| 1; 2; 4; 8; 16; 32; 64 |]
    "mapper.frontier_size"

let h_p_dis =
  Obs.Metrics.histogram ~buckets:[| 0; 1; 2; 4; 8; 16 |] "mapper.p_dis"

(* [par_b] is a boolean shape flag, so the histogram is a two-bucket
   true/false tally. *)
let h_par_b = Obs.Metrics.histogram ~buckets:[| 0; 1 |] "mapper.par_b"

(* [greedy = true] is the degradation rung: every node offers its
   consumers only the formed gate tuple, exactly as if it had multiple
   fanouts.  Each node then tries O(pareto_width^2) combinations instead
   of a product of full tuple tables, so the sweep is linear in the
   network and cannot blow the budget it is rescuing.

   [memo] is the structural cache ({!Memo}): before expanding a node's
   combination loop the sweep looks its canonical subtree up, and a hit
   installs the reconstructed slot array verbatim.  Memoization is
   exactly transparent — same circuit, same stats — except that
   [combinations_tried] (and the tuple-budget charge) counts only
   combinations actually executed, so hits lower it.  The greedy rung
   never consults the cache: it changes the mapping-boundary rule, so
   its tables live in a different world. *)
(* Per-node arming threshold for the packed pre-filter: a node pays
   [begin_node] (mirror reset + one pack per fanin option) before its
   first candidate, so nodes with fewer fanin-option pairs than this
   cannot win the reset back in skipped combines and price boxed.
   Tuned on the paper suite (k2/c880/des): 32 is the knee — below it
   small-node overhead erodes the filter's win, above it large cones
   lose skips.  Pure routing: results and counts are identical. *)
let arena_min_pairs = 32

let map_body ~greedy ~budget ~memo ~memo_salt ~core options u =
  if options.w_max < 2 || options.h_max < 2 then
    invalid_arg "Engine.map: w_max and h_max must be at least 2";
  if options.pareto_width < 1 then
    invalid_arg "Engine.map: pareto_width must be at least 1";
  (* The packed pre-filter (see Arena): on by default whenever the
     bounds fit the packed fields.  The greedy rung stays boxed — it is
     already linear and its tiny tables would never amortise the mirror
     bookkeeping. *)
  let filter_on =
    (not greedy)
    &&
    match core with
    | `Boxed -> false
    | `Auto -> Arena.eligible ~w_max:options.w_max ~h_max:options.h_max
    | `Arena ->
        if not (Arena.eligible ~w_max:options.w_max ~h_max:options.h_max)
        then
          invalid_arg
            (Printf.sprintf
               "Engine.map: ~core:`Arena requires packable bounds (W<=%d, \
                H<=%d, W*H<=%d); got W=%d H=%d"
               Arena.Packed.max_w Arena.Packed.max_h Arena.max_slots
               options.w_max options.h_max)
        else true
  in
  let actx = Arena.ctx () in
  let model = options.cost in
  let n = Unetwork.node_count u in
  let fanouts = Unetwork.fanout_counts u in
  let anet = Arena.Net.of_unetwork u in
  let entries =
    Array.init n (fun _ ->
        { table = Array.make (options.w_max * options.h_max) []; gate = None })
  in
  let combinations = ref 0 in
  (* Tuples rejected on arrival, evicted by a dominating newcomer, or
     truncated off the frontier cap.  The accounting is hoisted behind
     [counting] so the disabled hot path runs the same instructions as
     an uninstrumented build. *)
  let pruned = ref 0 in
  (* Candidates the packed filter skipped (a subset of [pruned]);
     batched into [arena.filtered] after the sweep. *)
  let filtered = ref 0 in
  let counting = Obs.Metrics.enabled () in

  let slot w h = ((w - 1) * options.h_max) + (h - 1) in

  let key s = Cost.key model s.Soi_rules.value in
  (* Truncate a sorted frontier to [k] tuples in one pass. *)
  let rec take k xs =
    match xs with x :: rest when k > 0 -> x :: take (k - 1) rest | _ -> []
  in
  (* [a] dominates [b] when every completion of [b] is matched or beaten
     by the same completion of [a].  That needs agreement on the shape
     flags the combinators read ([par_b]), the footedness coordinate
     ([has_pi]: a footless tuple completes into a cheaper gate, so it may
     dominate a footed one but never the reverse), and a componentwise
     comparison of the cost coordinates: [weighted] composes by addition
     but [depth] by [max], so comparing the collapsed key would wrongly
     discard a deeper-but-lighter tuple that wins after a later [max].
     This mirrors [Opt.Backend.dominates] — the fuzzer's exact oracle
     proved the old collapsed-key, foot-blind predicate drops optimal
     tuples (see test_engine's frontier regression). *)
  let dominates a b =
    a.Soi_rules.par_b = b.Soi_rules.par_b
    && ((not a.Soi_rules.has_pi) || b.Soi_rules.has_pi)
    && a.Soi_rules.value.Cost.weighted <= b.Soi_rules.value.Cost.weighted
    && (model.Cost.depth_factor = 0
       || a.Soi_rules.value.Cost.depth <= b.Soi_rules.value.Cost.depth)
    && a.Soi_rules.p_dis <= b.Soi_rules.p_dis
  in
  (* The frontier cap is cost-aware on both of a tuple's completion
     roles.  A surviving tuple is either combined further (its bare key
     is what matters) or formed into a gate right here (the key plus its
     formation liabilities: the second clocked transistor if its foot is
     needed, and its potential discharges when feet are left floating).
     Under weighted models the two orders genuinely disagree — a footed
     tuple can be the cheapest to extend while a slightly costlier
     footless one forms the cheaper gate — so truncating by either order
     alone drops a winner (the exact oracle proved both directions on
     real inputs).  The cap therefore keeps the top [pareto_width]
     tuples under {e each} order; a slot holds at most twice the
     configured width, and only when the two orders disagree. *)
  let formed_key s =
    key s
    + (if s.Soi_rules.has_pi then model.Cost.clocked else 0)
    + (if options.grounded_at_foot then 0
       else model.Cost.discharge * s.Soi_rules.p_dis)
  in
  let compare_inline a b =
    match compare (key a) (key b) with
    | 0 -> (
        match compare a.Soi_rules.p_dis b.Soi_rules.p_dis with
        | 0 -> (
            match compare a.Soi_rules.value.Cost.raw b.Soi_rules.value.Cost.raw with
            (* Footless last: at an equal inline key the footed tuple is
               the one only this order can save (dominance already
               prefers footless on exact ties of every coordinate). *)
            | 0 -> compare b.Soi_rules.has_pi a.Soi_rules.has_pi
            | c -> c)
        | c -> c)
    | c -> c
  in
  let compare_formed a b =
    match compare (formed_key a) (formed_key b) with
    | 0 -> (
        match compare a.Soi_rules.p_dis b.Soi_rules.p_dis with
        | 0 -> (
            match compare a.Soi_rules.value.Cost.raw b.Soi_rules.value.Cost.raw with
            | 0 -> compare a.Soi_rules.has_pi b.Soi_rules.has_pi
            | c -> c)
        | c -> c)
    | c -> c
  in
  (* Under a depth objective the collapsed key also hides a second
     genuine tradeoff: [weighted] composes by [+] but [depth] by [max],
     so a deeper-but-lighter tuple beats a shallower-but-heavier one
     exactly when a later combination pairs it with a deep sibling.
     Keeping the lightest tuples as a third set preserves that end of
     the frontier; when [depth_factor = 0] the weighted order coincides
     with the key order and the set is redundant. *)
  let compare_light a b =
    match compare a.Soi_rules.value.Cost.weighted b.Soi_rules.value.Cost.weighted with
    | 0 -> (
        match compare a.Soi_rules.value.Cost.depth b.Soi_rules.value.Cost.depth with
        | 0 -> (
            match compare a.Soi_rules.p_dis b.Soi_rules.p_dis with
            | 0 -> (
                match
                  compare a.Soi_rules.value.Cost.raw b.Soi_rules.value.Cost.raw
                with
                | 0 -> compare b.Soi_rules.has_pi a.Soi_rules.has_pi
                | c -> c)
            | c -> c)
        | c -> c)
    | c -> c
  in
  let cap_frontier sorted =
    if List.length sorted <= options.pareto_width then sorted
    else
      let keep_inline = take options.pareto_width sorted in
      let keep_formed =
        take options.pareto_width (List.sort compare_formed sorted)
      in
      let keep_light =
        if model.Cost.depth_factor = 0 then []
        else take options.pareto_width (List.sort compare_light sorted)
      in
      List.filter
        (fun s ->
          List.memq s keep_inline || List.memq s keep_formed
          || List.memq s keep_light)
        sorted
  in
  (* Returns [true] iff the slot's frontier actually changed — the
     mirror refresh below keys on it, so rejected candidates (bound or
     dominance) cost no repacking. *)
  let consider entry (s : Soi_rules.sol) =
    if s.Soi_rules.w <= options.w_max && s.Soi_rules.h <= options.h_max then begin
      let i = slot s.Soi_rules.w s.Soi_rules.h in
      let kept = entry.table.(i) in
      if List.exists (fun old -> dominates old s) kept then begin
        if counting then incr pruned;
        false
      end
      else begin
        let survivors = List.filter (fun old -> not (dominates s old)) kept in
        if counting then
          pruned := !pruned + (List.length kept - List.length survivors);
        let sorted = List.sort compare_inline (s :: survivors) in
        let capped = cap_frontier sorted in
        (if counting then
           pruned := !pruned + (List.length sorted - List.length capped));
        entry.table.(i) <- capped;
        true
      end
    end
    else begin
      if counting then incr pruned;
      false
    end
  in
  (* Per-node filter gate.  [begin_node] costs a mirror reset plus one
     pack per fanin option; a node with only a handful of candidate
     pairs cannot win that back in skipped combines, so the filter only
     arms on nodes with enough pairs to amortise it (the gate is pure
     routing — counts and results are byte-identical either way). *)
  let node_filter = ref false in
  (* Boxed [consider] plus the mirror refresh the filter depends on: a
     candidate that changed its slot's frontier makes the mirror stale,
     so re-pack that slot into the scratch mirror. *)
  let consider_refresh entry (s : Soi_rules.sol) =
    if consider entry s && !node_filter then begin
      let i = slot s.Soi_rules.w s.Soi_rules.h in
      Arena.refresh_slot actx ~slot:i entry.table.(i)
    end
  in
  (* Insert-verdict fast path: the filter proved the candidate is in
     bounds and survives dominance against the slot's (clean) mirror,
     so the boxed dominance re-check is skipped and the scalars come
     from the exact packed words — the packed combination is the only
     scalar arithmetic a survivor pays. *)
  let consider_insert entry ~c0 ~c1 structure =
    let s = Arena.Packed.unpack_with ~structure ~w0:c0 ~w1:c1 in
    let i = slot s.Soi_rules.w s.Soi_rules.h in
    let kept = entry.table.(i) in
    let survivors = List.filter (fun old -> not (dominates s old)) kept in
    if counting then
      pruned := !pruned + (List.length kept - List.length survivors);
    let sorted = List.sort compare_inline (s :: survivors) in
    let capped = cap_frontier sorted in
    (if counting then
       pruned := !pruned + (List.length sorted - List.length capped));
    entry.table.(i) <- capped;
    Arena.refresh_slot actx ~slot:i capped
  in
  let boxed_combine op s0 s1 =
    match op with
    | `Or -> Soi_rules.combine_or model s0 s1
    | `And_soi -> Soi_rules.combine_and_soi model ~top:s0 ~bottom:s1
    | `And_soi_rev -> Soi_rules.combine_and_soi model ~top:s1 ~bottom:s0
    | `And_bulk -> Soi_rules.combine_and_bulk model ~top:s0 ~bottom:s1
  in
  let structure_of op (s0 : Soi_rules.sol) (s1 : Soi_rules.sol) =
    match op with
    | `Or ->
        Domino.Pdn.Parallel (s0.Soi_rules.structure, s1.Soi_rules.structure)
    | `And_soi | `And_bulk ->
        Domino.Pdn.Series (s0.Soi_rules.structure, s1.Soi_rules.structure)
    | `And_soi_rev ->
        Domino.Pdn.Series (s1.Soi_rules.structure, s0.Soi_rules.structure)
  in
  (* One candidate end to end: Skip_pruned only bumps the pruned count;
     Insert materialises from the packed words; anything unpackable —
     or every candidate when the filter is off — prices fully boxed. *)
  let price entry op s0 s1 i0 i1 =
    if not !node_filter then consider_refresh entry (boxed_combine op s0 s1)
    else
      match
        Arena.candidate actx ~depth_factor:model.Cost.depth_factor
          ~clocked:model.Cost.clocked ~discharge:model.Cost.discharge
          ~grounded:options.grounded_at_foot ~pareto:options.pareto_width ~op
          ~i0 ~i1
      with
      | Arena.Skip_pruned ->
          if counting then begin
            incr pruned;
            incr filtered
          end
      | Arena.Insert { c0; c1 } ->
          consider_insert entry ~c0 ~c1 (structure_of op s0 s1)
      | Arena.Run_boxed -> consider_refresh entry (boxed_combine op s0 s1)
  in

  (* The gate formed over one inline tuple: overhead for the foot,
     uncommitted discharges when feet are left floating, one level up. *)
  let form_info (s : Soi_rules.sol) =
    let footed = s.Soi_rules.has_pi in
    let extra_disch =
      if options.grounded_at_foot then 0 else s.Soi_rules.p_dis
    in
    let value =
      Cost.level_up
        (Cost.combine s.Soi_rules.value
           (Cost.combine
              (Cost.gate_overhead model ~footed)
              (Cost.discharges model extra_disch)))
    in
    {
      gi_structure = s.Soi_rules.structure;
      gi_footed = footed;
      gi_level = value.Cost.depth;
      gi_value = value;
      gi_disch = s.Soi_rules.disch + extra_disch;
    }
  in

  (* The gate a node forms, computed after its table is complete. *)
  let form_gate id =
    let entry = entries.(id) in
    let best = ref None in
    Array.iter
      (fun cands ->
        List.iter
          (fun (s : Soi_rules.sol) ->
            let info = form_info s in
            let better =
              match !best with
              | None -> true
              | Some b -> Cost.compare_values model info.gi_value b.gi_value < 0
            in
            if better then best := Some info)
          cands)
      entry.table;
    match !best with
    | Some info ->
        entry.gate <- Some info;
        info
    | None ->
        (* Unreachable in practice: every AND/OR node admits at least the
           {2,1}/{1,2} combination of its fanins' gate tuples, which fits
           any bounds >= 2.  Name the node and bounds instead of dying
           anonymously if an engine change ever breaks that invariant. *)
        invalid_arg
          (Printf.sprintf
             "Engine.form_gate: node %d has no feasible tuple within W<=%d, \
              H<=%d"
             id options.w_max options.h_max)
  in

  (* Formed-gate alternatives for single-fanout drivers under a depth
     objective.  With [depth_factor = 0] the formed key totally orders a
     node's formed candidates, so committing to the single
     [Cost.compare_values] winner is exact.  With a depth term the
     candidates are only partially ordered — [weighted] composes by [+]
     but [depth] by [max], so a deeper-but-lighter formed gate and a
     shallower-but-heavier one each win beside different siblings — and
     the exact oracle proved the single commitment drops the optimum
     (fuzz seed 1, run 230).  Each alternative is registered here under a
     synthetic gate id (>= node count) so the winning structure names the
     exact gate it was costed with and [materialise] emits that one. *)
  let alt_gates : (int, gate_info) Hashtbl.t = Hashtbl.create 16 in
  let next_alt = ref n in
  let register_alt info =
    let id = !next_alt in
    incr next_alt;
    Hashtbl.replace alt_gates id info;
    id
  in

  let gate_of id =
    if id >= n then Hashtbl.find alt_gates id
    else
      match entries.(id).gate with Some g -> g | None -> form_gate id
  in

  (* Candidate tuples a fanin offers to its consumer.  The sweep works
     on the flat [Arena.Net] fanin encoding, so dispatch here is integer
     tests rather than a boxed [fin] match. *)
  let options_of_enc enc =
    if Arena.Net.is_const enc then
      (* Unreachable via the public constructors: [Unetwork.mk] folds
         constant fanins away at build time, so only hand-assembled
         node records could trip this. *)
      invalid_arg
        "Engine.map: constant fanin reached the DP sweep; unate networks \
         from Unetwork.of_network/with_structure fold constants away"
    else if not (Arena.Net.is_node enc) then
      [
        Soi_rules.leaf_pi model ~input:(Arena.Net.lit_input enc)
          ~positive:(Arena.Net.lit_positive enc);
      ]
    else begin
      let m = enc in
        let shared = fanouts.(m) > 1 || greedy in
        if shared then begin
          let gi = gate_of m in
          [
            Soi_rules.leaf_gate model ~node:m ~level:gi.gi_level
              ~carried:Cost.zero ~carried_disch:0;
          ]
        end
        else if model.Cost.depth_factor = 0 then begin
          (* Single commitment is exact here: the formed key totally
             orders the candidates (depth does not enter the key). *)
          let gi = gate_of m in
          let gate_sol =
            Soi_rules.leaf_gate model ~node:m ~level:gi.gi_level
              ~carried:gi.gi_value ~carried_disch:gi.gi_disch
          in
          Array.fold_left
            (fun acc cands -> List.rev_append cands acc)
            [ gate_sol ] entries.(m).table
        end
        else begin
          (* Depth objective: offer one formed alternative per distinct
             formation cost vector, each under its own synthetic id (see
             [register_alt]).  Deduplication keeps the first structure
             per vector — alternatives equal on every cost coordinate
             are interchangeable downstream. *)
          let seen = Hashtbl.create 8 in
          let alts =
            Array.fold_left
              (fun acc cands ->
                List.fold_left
                  (fun acc s ->
                    let info = form_info s in
                    let k =
                      ( info.gi_value,
                        info.gi_footed,
                        info.gi_disch,
                        info.gi_level )
                    in
                    if Hashtbl.mem seen k then acc
                    else begin
                      Hashtbl.replace seen k ();
                      let fid = register_alt info in
                      Soi_rules.leaf_gate model ~node:fid ~level:info.gi_level
                        ~carried:info.gi_value ~carried_disch:info.gi_disch
                      :: acc
                    end)
                  acc cands)
              [] entries.(m).table
          in
          Array.fold_left
            (fun acc cands -> List.rev_append cands acc)
            alts entries.(m).table
        end
    end
  in

  (* The memo session, opened only for full (non-greedy) sweeps with a
     table supplied.  [boundary_level] forms the boundary gate on demand,
     exactly as [options_of_fin] would moments later.  Depth objectives
     bypass the cache: their tables reference the run-local synthetic
     gate ids of formed-gate alternatives, which are meaningless in any
     other run (see [register_alt]). *)
  let mrun =
    match memo with
    | Some tbl when (not greedy) && model.Cost.depth_factor = 0 ->
        Some
          (Memo.start tbl ~u ~fanouts ~model ~w_max:options.w_max
             ~h_max:options.h_max
             ~soi:(options.style = Soi)
             ~both_orders:options.both_orders
             ~grounded:options.grounded_at_foot ~pareto:options.pareto_width
             ~salt:memo_salt
             ~boundary_level:(fun m -> (gate_of m).gi_level))
    | _ -> None
  in

  (* Main DP sweep in topological order.  Budget checkpoints: every
     combination charges the tuple allowance, and the wall clock is
     consulted once per node plus every 2048 combinations, so a tripped
     budget surfaces within a bounded amount of further work.  Memo hits
     skip a node's combination loop (and its budget charge) entirely. *)
  for id = 0 to n - 1 do
    Resilience.Budget.check_deadline budget;
    let entry = entries.(id) in
    match (match mrun with Some r -> Memo.find r id | None -> None) with
    | Some table -> Array.blit table 0 entry.table 0 (Array.length table)
    | None ->
        let opts0 = options_of_enc (Arena.Net.fin0 anet id) in
        let opts1 = options_of_enc (Arena.Net.fin1 anet id) in
        node_filter :=
          filter_on
          && List.length opts0 * List.length opts1 >= arena_min_pairs;
        if !node_filter then
          Arena.begin_node actx ~w_max:options.w_max ~h_max:options.h_max
            ~opts0 ~opts1;
        let is_and = Arena.Net.is_and anet id in
        let i0 = ref (-1) in
        List.iter
          (fun s0 ->
            incr i0;
            let i1 = ref (-1) in
            List.iter
              (fun s1 ->
                incr i1;
                incr combinations;
                Resilience.Budget.charge_tuples budget 1;
                if !combinations land 2047 = 0 then
                  Resilience.Budget.check_deadline budget;
                if not is_and then price entry `Or s0 s1 !i0 !i1
                else
                  match options.style with
                  | Bulk -> price entry `And_bulk s0 s1 !i0 !i1
                  | Soi ->
                      if options.both_orders then begin
                        price entry `And_soi s0 s1 !i0 !i1;
                        price entry `And_soi_rev s0 s1 !i0 !i1
                      end
                      else begin
                        let top, _ = Soi_rules.heuristic_and_order s0 s1 in
                        let op =
                          if top == s0 then `And_soi else `And_soi_rev
                        in
                        price entry op s0 s1 !i0 !i1
                      end)
              opts1)
          opts0;
        (match mrun with Some r -> Memo.store r id entry.table | None -> ())
  done;

  (* Close the memo session: fold its counts into the table and the
     cache.* metrics, and leave a zero-duration span carrying them. *)
  (match mrun with
  | None -> ()
  | Some r ->
      let hits, misses, collisions = Memo.finish r in
      Obs.Trace.with_span ~cat:"mapper" "engine.memo"
        ~args:(fun () ->
          [
            ("hits", string_of_int hits);
            ("misses", string_of_int misses);
            ("collisions", string_of_int collisions);
          ])
        (fun () -> ()));

  (* Materialise the gates reachable from the primary outputs. *)
  let circuit_gates = Logic.Vec.create () in
  let circuit_id : (int, int) Hashtbl.t = Hashtbl.create 256 in
  let materialise root =
    let stack = ref [ root ] in
    while !stack <> [] do
      match !stack with
      | [] -> ()
      | m :: rest ->
          if Hashtbl.mem circuit_id m then stack := rest
          else begin
            let gi = gate_of m in
            let deps =
              List.filter
                (fun q -> not (Hashtbl.mem circuit_id q))
                (Pdn.gate_fanins gi.gi_structure)
            in
            match deps with
            | [] ->
                let remap = function
                  | Pdn.S_gate q -> Pdn.S_gate (Hashtbl.find circuit_id q)
                  | (Pdn.S_pi _ | Pdn.S_const _) as s -> s
                in
                let pdn = Pdn.map_signals remap gi.gi_structure in
                let level =
                  1
                  + List.fold_left
                      (fun acc q ->
                        max acc
                          (Logic.Vec.get circuit_gates q).Domino_gate.level)
                      0 (Pdn.gate_fanins pdn)
                in
                let discharge_points =
                  match options.style with
                  | Bulk -> []
                  | Soi ->
                      Pbe_analysis.discharge_points
                        ~grounded:options.grounded_at_foot pdn
                in
                let id' =
                  Logic.Vec.push circuit_gates
                    {
                      Domino_gate.id = Logic.Vec.length circuit_gates;
                      pdn;
                      footed = gi.gi_footed;
                      discharge_points;
                      level;
                    }
                in
                Hashtbl.replace circuit_id m id';
                stack := rest
            | _ -> stack := deps @ !stack
          end
    done
  in
  let outputs =
    Array.map
      (fun (nm, fin) ->
        match fin with
        | Unetwork.F_const c ->
            (* A domino gate cannot evaluate to a constant (its dynamic
               node precharges every cycle), so constant outputs are tied
               to the rail directly: no gate, no clock load, no PBE
               exposure.  See the [Pdn.S_const] documentation. *)
            (nm, Pdn.S_const c)
        | Unetwork.F_lit { input; positive } -> (nm, Pdn.S_pi { input; positive })
        | Unetwork.F_node m ->
            materialise m;
            (nm, Pdn.S_gate (Hashtbl.find circuit_id m)))
      (Unetwork.outputs u)
  in
  let circuit =
    {
      Circuit.source = Unetwork.source_name u;
      input_names = Unetwork.inputs u;
      gates = Logic.Vec.to_array circuit_gates;
      outputs;
    }
  in
  (* Tuples that survived in the final tables — evicted and superseded
     entries do not count. *)
  let tuples_kept =
    Array.fold_left
      (fun acc e ->
        Array.fold_left (fun acc cands -> acc + List.length cands) acc e.table)
      0 entries
  in
  (* One registry flush per map call; the whole block is skipped when
     collection is off, so the disabled cost is this single branch. *)
  if Obs.Metrics.enabled () then begin
    Obs.Metrics.add m_nodes n;
    Obs.Metrics.add m_combinations !combinations;
    Obs.Metrics.add m_tuples_kept tuples_kept;
    Obs.Metrics.add m_tuples_pruned !pruned;
    Obs.Metrics.add m_arena_filtered !filtered;
    Obs.Metrics.add m_gates (Array.length circuit.Circuit.gates);
    Array.iter
      (fun g ->
        Obs.Metrics.add m_discharges
          (List.length g.Domino_gate.discharge_points))
      circuit.Circuit.gates;
    Array.iter
      (fun e ->
        let frontier =
          Array.fold_left
            (fun acc cands -> acc + List.length cands)
            0 e.table
        in
        Obs.Metrics.observe h_frontier frontier;
        Array.iter
          (List.iter (fun (s : Soi_rules.sol) ->
               Obs.Metrics.observe h_p_dis s.Soi_rules.p_dis;
               Obs.Metrics.observe h_par_b (if s.Soi_rules.par_b then 1 else 0)))
          e.table)
      entries
  end;
  ( circuit,
    {
      nodes_processed = n;
      tuples_kept;
      combinations_tried = !combinations;
      gates_formed = Array.length circuit.Circuit.gates;
    },
    (* Formed-gate lookup over the completed sweep, for the exact
       certifier: every mapping boundary has its gate by now (consumers
       and output materialisation force them), so a [None] only answers
       queries about interior nodes no consumer turned into a gate. *)
    (fun id ->
      if id < 0 || id >= n then None
      else Option.map (fun g -> g.gi_value) entries.(id).gate),
    (* The final per-node slot arrays, for the differential harness. *)
    Array.map (fun e -> e.table) entries )

let map_impl ~greedy ~budget ~memo ~memo_salt ~core options u =
  Obs.Trace.with_span ~cat:"mapper" "engine.map"
    ~args:(fun () ->
      [
        ("source", Unetwork.source_name u);
        ("nodes", string_of_int (Unetwork.node_count u));
        ("greedy", string_of_bool greedy);
      ])
    (fun () -> map_body ~greedy ~budget ~memo ~memo_salt ~core options u)

let map_with_gates ?(budget = Resilience.Budget.unlimited) ?memo
    ?(memo_salt = 0) ?(core = `Auto) options u =
  let circuit, stats, gates, _tables =
    map_impl ~greedy:false ~budget ~memo ~memo_salt ~core options u
  in
  (circuit, stats, gates)

let map ?(budget = Resilience.Budget.unlimited) ?memo ?(memo_salt = 0)
    ?(core = `Auto) options u =
  let circuit, stats, _gates, _tables =
    map_impl ~greedy:false ~budget ~memo ~memo_salt ~core options u
  in
  (circuit, stats)

let map_tables ?(budget = Resilience.Budget.unlimited) ?memo ?(memo_salt = 0)
    ?(core = `Auto) options u =
  let circuit, stats, _gates, tables =
    map_impl ~greedy:false ~budget ~memo ~memo_salt ~core options u
  in
  (circuit, stats, tables)

(* The fallback runs unbudgeted on purpose: it is linear in the network,
   so re-imposing the deadline that the full DP just blew would only
   turn a guaranteed-cheap rescue into a second failure.  It also runs
   memo-free: greedy tables obey a different boundary rule. *)
let map_greedy options u =
  let circuit, stats, _gates, _tables =
    map_impl ~greedy:true ~budget:Resilience.Budget.unlimited ~memo:None
      ~memo_salt:0 ~core:`Boxed options u
  in
  (circuit, stats)

let map_outcome ?(budget = Resilience.Budget.unlimited) ?memo ?(memo_salt = 0)
    ?(core = `Auto) ?(on_exhaust = `Degrade) options u =
  match map ~budget ?memo ~memo_salt ~core options u with
  | result -> Resilience.Outcome.Ok result
  | exception Resilience.Budget.Exhausted reason -> (
      match on_exhaust with
      | `Fail -> Resilience.Outcome.Failed reason
      | `Degrade ->
          Obs.Metrics.incr m_greedy_fallback;
          Resilience.Outcome.Degraded
            ( map_greedy options u,
              [ { Resilience.Outcome.stage = "mapper"; reason;
                  fallback = "greedy" } ] ))

(* ---------- incremental remapping ---------- *)

let m_remap_runs = Obs.Metrics.counter "remap.runs"
let m_remap_dirty = Obs.Metrics.counter "remap.dirty"
let m_remap_clean = Obs.Metrics.counter "remap.clean"

type remap_state = {
  rs_options : options;
  rs_memo : Memo.t;
  rs_salt : int;
  rs_core : core;
  mutable rs_prev : Memo.fingerprint;
  mutable rs_u : Unetwork.t;  (* the last network mapped through the state *)
  mutable rs_result : Domino.Circuit.t * stats;  (* ... and its answer *)
}

type remap_info = {
  dirty_cones : int;
  clean_cones : int;
  memo_hits : int;
  memo_misses : int;
}

let remap_init ?(budget = Resilience.Budget.unlimited) ?memo ?(memo_salt = 0)
    ?(core = `Auto) options u =
  let memo = match memo with Some t -> t | None -> Memo.create () in
  let result = map ~budget ~memo ~memo_salt ~core options u in
  ( {
      rs_options = options;
      rs_memo = memo;
      rs_salt = memo_salt;
      rs_core = core;
      rs_prev = Memo.fingerprint u;
      rs_u = u;
      rs_result = result;
    },
    result )

(* Whole-network fast path guard: exact structural equality — names,
   inputs, outputs, the full node array.  Fingerprints alone are not
   enough here (they cover node structure but not output wiring), and
   the daemon's steady state re-parses each payload, so physical
   equality would never fire; structural equality does. *)
let unetwork_equal a b =
  Unetwork.source_name a = Unetwork.source_name b
  && Unetwork.inputs a = Unetwork.inputs b
  && Unetwork.node_count a = Unetwork.node_count b
  && Unetwork.outputs a = Unetwork.outputs b
  &&
  let n = Unetwork.node_count a in
  let rec go i =
    i >= n || (Unetwork.node a i = Unetwork.node b i && go (i + 1))
  in
  go 0

let remap ?(budget = Resilience.Budget.unlimited) st u =
  if unetwork_equal st.rs_u u then begin
    (* Identical network: the cached answer IS the cold answer (memo
       transparency), every cone is clean, and no memo traffic happens
       — the remap costs one O(n) comparison. *)
    let clean = Unetwork.node_count u in
    if Obs.Metrics.enabled () then begin
      Obs.Metrics.incr m_remap_runs;
      Obs.Metrics.add m_remap_clean clean
    end;
    let circuit, stats = st.rs_result in
    ( circuit,
      stats,
      { dirty_cones = 0; clean_cones = clean; memo_hits = 0; memo_misses = 0 }
    )
  end
  else begin
    let next = Memo.fingerprint u in
    let dirty, clean = Memo.dirty_counts ~prev:st.rs_prev ~next in
    let before = Memo.stats st.rs_memo in
    let circuit, stats =
      map ~budget ~memo:st.rs_memo ~memo_salt:st.rs_salt ~core:st.rs_core
        st.rs_options u
    in
    let after = Memo.stats st.rs_memo in
    st.rs_prev <- next;
    st.rs_u <- u;
    st.rs_result <- (circuit, stats);
    if Obs.Metrics.enabled () then begin
      Obs.Metrics.incr m_remap_runs;
      Obs.Metrics.add m_remap_dirty dirty;
      Obs.Metrics.add m_remap_clean clean
    end;
    ( circuit,
      stats,
      {
        dirty_cones = dirty;
        clean_cones = clean;
        memo_hits = after.Memo.hits - before.Memo.hits;
        memo_misses = after.Memo.misses - before.Memo.misses;
      } )
  end
