(** Structural memoization for the DP mapper.

    The engine re-solves structurally identical fanout-free subtrees over
    and over — across the nodes of one network, across the objectives of a
    {!Multi.sweep} portfolio, and across the thousands of sampled
    configurations of a fuzz campaign.  The tuple tables it builds depend
    only on the {e shape} of the subtree below a node (operator kinds,
    series/parallel ordering, which leaves are primary-input literals and
    which are formed gates at a given level, and the pattern of repeated
    leaves), on the cost-model scalars, and on the engine options — never
    on {e which} primary input or gate drives a leaf.  A memo table
    exploits that: it caches, per canonical subtree, the complete DP tuple
    frontier with identity-erased leaves, and a hit reconstructs the exact
    table by substituting the current instance's leaf signals back in.

    {2 Transparency guarantee}

    Memoization is exact, not approximate.  A run with a memo table
    produces the same {!Domino.Circuit.t} (structurally equal) and the
    same {!Engine.stats} as a run without one, with a single documented
    exception: [combinations_tried] counts only combinations actually
    executed, so cache hits — which skip a node's combination loop
    entirely — lower it (and the [mapper.combinations] /
    [mapper.tuples_pruned] metrics, and the tuple-budget charge).
    [tuples_kept], [nodes_processed] and [gates_formed] are recomputed
    from the final tables and are identical.  The argument: every engine
    decision ({!Soi_rules.compare_sols}, domination, the stable frontier
    sort, {!Soi_rules.heuristic_and_order}, the tuples' [has_pi] flag)
    reads scalars and leaf {e kinds} only, and the enumeration order over fanin
    options is determined by the subtree shape — so equal canonical
    shapes under equal key fingerprints yield byte-identical canonical
    tables, and substitution is a bijection on the leaf signals.

    {2 Keying}

    Lookups are keyed by a 128-bit structural signature (bottom-up
    splitmix hashing, symmetric in the two fanins so commutative
    mirror-images share a bucket) together with the cost-model
    fingerprint (the four weight scalars; the model's name is excluded,
    so differently-named models with equal weights share) and the options
    fingerprint (bounds, style, ordering, foot and frontier settings).
    The signature is a filter, not the proof: every hit is confirmed by
    an ordered structural comparison of canonical shapes, which also
    distinguishes duplicate-leaf patterns ([a*a] never borrows [a*b]'s
    table) and mirrored fanin orders.  Same-key entries with different
    shapes coexist in a bucket and are counted as collisions.

    A table is safe to share across domains (sharded, mutex-protected,
    immutable entries).  The greedy degradation sweep
    ({!Engine.map_greedy}) bypasses the cache entirely: it changes the
    mapping-boundary rule, so its tables are not comparable.

    Persistent caches ([soimap --cache]) use a versioned binary format
    with a magic header and a payload digest; see docs/mapping-cache.md.
    Corrupt, truncated or wrong-version files degrade to a cold start
    through {!Resilience.Outcome} — they never crash and never poison
    the table. *)

type t
(** A memo table.  Cheap to create; share one across the runs that
    should pool their work (a portfolio sweep, a warm CLI run). *)

val create : ?shards:int -> unit -> t
(** [create ()] builds an empty table with [shards] internal shards
    (default 16, rounded up to a power of two; use [~shards:1] when the
    table is only ever touched by one task, e.g. a fuzz run). *)

type stats = {
  hits : int;
  misses : int;  (** memoizable lookups that found no entry *)
  collisions : int;
      (** lookups that scanned a same-key entry with a different
          canonical shape (equal 128-bit signature, unequal structure) *)
  entries : int;  (** canonical tables currently stored *)
}

val stats : t -> stats
(** Lifetime totals, accumulated at {!finish} (and {!load}/{!save} for
    [entries]). *)

val entry_count : t -> int
(** Number of cached canonical tables (same as [(stats t).entries]). *)

(** {2 Per-mapping-run sessions}

    The engine opens a [run] per [map] call.  A run resolves node
    signatures incrementally in topological order, so {!find} must be
    called for node [0, 1, ..., n-1] in order, and {!store} for a node
    immediately after its missed {!find} (the engine's sweep does both
    naturally). *)

type run

val start :
  t ->
  u:Unate.Unetwork.t ->
  fanouts:int array ->
  model:Cost.model ->
  w_max:int ->
  h_max:int ->
  soi:bool ->
  both_orders:bool ->
  grounded:bool ->
  pareto:int ->
  salt:int ->
  boundary_level:(int -> int) ->
  run
(** [start t ~u ~fanouts ... ~boundary_level] opens a session for one
    mapping of [u].  [fanouts] must be [Unetwork.fanout_counts u] (the
    engine's own array); [boundary_level m] must return the formed-gate
    level of multi-fanout node [m] — it is only called for nodes below
    the one being looked up, whose tables are already complete.
    [salt] (0 for plain mapping) extends the options fingerprint: sessions with
    different salts never share entries — the rewriting front end salts
    with its pattern-set fingerprint and variant budget so rewritten and
    plain runs keep disjoint cache worlds. *)

val find : run -> int -> Soi_rules.sol list array option
(** [find r id] resolves node [id]'s structural signature and looks its
    subtree up.  [Some table] is the reconstructed slot array (length
    [w_max * h_max], same layout as the engine's) — use it verbatim and
    skip the combination loop.  [None] means a miss, or that the node is
    not memoizable (oversized subtree); compute as usual and call
    {!store}. *)

val store : run -> int -> Soi_rules.sol list array -> unit
(** [store r id table] canonicalizes and inserts the completed slot
    array for node [id].  A no-op for unmemoizable nodes, and when
    another task raced the same canonical entry in. *)

val finish : run -> int * int * int
(** [finish r] folds the session's counts into the table and the
    [cache.*] metrics (when collection is enabled) and returns
    [(hits, misses, collisions)] for the caller's trace span.  Call at
    most once, after the sweep. *)

(** {2 Network fingerprints (incremental remapping)}

    The table itself is content-addressed, so an edited network never
    needs a rebuild or a flush: entries for unchanged cones keep
    serving, and the edited cones simply miss and recompute — the
    dirty-cone-only invalidation path.  A {!fingerprint} makes that
    boundary observable {e before} mapping: it assigns every node a
    deep structural signature over its whole transitive fanin —
    ordered, literal-identity-included, and boundary-marked (whether
    each referenced node has fanout > 1), i.e. everything the DP solve
    of that node's cone is a function of.  A node of the edited
    network whose signature also appears in the previous network's
    fingerprint is {e clean}: its cone maps identically and every
    memoizable lookup below it hits.  {!Engine.remap} uses the
    dirty/clean partition to report how much of a warm mapping was
    spliced from cache. *)

type fingerprint

val fingerprint : Unate.Unetwork.t -> fingerprint
(** Deep per-node signatures of [u]; linear in the network. *)

val dirty_cones : prev:fingerprint -> next:fingerprint -> bool array
(** Per node of the [next] network: [true] when no node of [prev] has
    the same deep signature (the cone must be recomputed), [false]
    when the cone — including every mapping-boundary level below it —
    is structurally unchanged.  Conservative in the sound direction:
    a clean verdict guarantees warm-table hits; a dirty verdict merely
    recomputes (and may still hit through the memo's identity-erased
    sharing). *)

val dirty_counts : prev:fingerprint -> next:fingerprint -> int * int
(** [(dirty, clean)] totals of {!dirty_cones}. *)

val fingerprint_hex : fingerprint -> int -> string option
(** The deep signature of node [id] as 32 hex digits (tests). *)

(** {2 Introspection (tests, debugging)} *)

val signature_hex : run -> int -> string option
(** The 128-bit subtree signature of node [id] as 32 hex digits, once
    {!find} has resolved it; [None] for unmemoizable nodes. *)

val shape_string : run -> int -> string option
(** A deterministic rendering of node [id]'s canonical shape (the value
    compared on the collision-check path), once {!find} has resolved
    it. *)

val self_check : t -> (int, string) result
(** Scans every bucket and verifies the structural invariants: same-key
    entries have pairwise distinct canonical shapes, and every cached
    table has the slot-array length its key demands.  [Ok n] reports the
    number of entries checked. *)

(** {2 Persistence} *)

val save : t -> string -> int Resilience.Outcome.t
(** [save t file] atomically writes every entry to [file] (private
    O_EXCL temp file + rename) in the versioned binary format and
    returns the payload size in bytes.  Safe against concurrent writers:
    two processes saving the same [file] (daemon flush racing a CLI run)
    each stream into their own pid+sequence-named temp file, so a reader
    always observes either the old complete payload or a new one, never
    a torn mix.  I/O failures return [Degraded (0, _)] with a
    [Cache_invalid] reason — never an exception. *)

val load : t -> string -> int Resilience.Outcome.t
(** [load t file] merges a saved cache into [t] and returns the number
    of entries added.  A missing file is a normal cold start ([Ok 0]).
    A corrupt, truncated or wrong-version file leaves [t] untouched and
    returns [Degraded (0, [d])] where [d.reason] is
    [Budget.Cache_invalid _] and [d.fallback] is ["cold-start"] — never
    an exception, and unmarshalling is attempted only after the payload
    digest has been verified. *)
