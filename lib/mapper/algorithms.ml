type flow =
  | Domino_map
  | Rs_map
  | Soi_domino_map

let flow_name = function
  | Domino_map -> "Domino_Map"
  | Rs_map -> "RS_Map"
  | Soi_domino_map -> "SOI_Domino_Map"

type result = {
  circuit : Domino.Circuit.t;
  counts : Domino.Circuit.counts;
  unate : Unate.Unetwork.t;
  mapped : Unate.Unetwork.t;
  stats : Engine.stats;
  rewrite : Restructure.info option;
}

let prepare ?(extract = false) net =
  Obs.Trace.with_span ~cat:"mapper" "mapper.prepare"
    ~args:(fun () -> [ ("source", Logic.Network.name net) ])
    (fun () ->
      let net =
        Obs.Trace.with_span ~cat:"mapper" "prepare.strash" (fun () ->
            Logic.Strash.run net)
      in
      let net =
        if extract then
          Obs.Trace.with_span ~cat:"mapper" "prepare.extract" (fun () ->
              Logic.Extract.run net)
        else net
      in
      Obs.Trace.with_span ~cat:"mapper" "prepare.decompose" (fun () ->
          Unate.Unetwork.of_network (Unate.Decompose.to_aoi net)))

let options_of ~cost ~w_max ~h_max ~both_orders ~grounded_at_foot ~pareto_width
    flow =
  let style =
    match flow with Domino_map | Rs_map -> Engine.Bulk | Soi_domino_map -> Engine.Soi
  in
  { Engine.w_max; h_max; style; cost; both_orders; grounded_at_foot; pareto_width }

(* The flow-specific postprocess is linear in the circuit, so it runs on
   degraded mappings unbudgeted, exactly as on full ones. *)
let postprocess_of flow circuit =
  Obs.Trace.with_span ~cat:"mapper" "mapper.postprocess"
    ~args:(fun () -> [ ("flow", flow_name flow) ])
    (fun () ->
      match flow with
      | Domino_map -> Postprocess.insert_discharges circuit
      | Rs_map -> Postprocess.rearrange_stacks circuit
      | Soi_domino_map ->
          (* Stack reordering is one of the paper's transformations; the DP
             makes its ordering choices pairwise per AND node, so a final
             flatten-and-reorder pass can still sink a parallel branch that
             was committed early.  Discharge points are recomputed for the
             reordered structures. *)
          Postprocess.rearrange_stacks circuit)

let postprocess = postprocess_of

let finish flow u circuit stats =
  let circuit = postprocess_of flow circuit in
  {
    circuit;
    counts = Domino.Circuit.counts circuit;
    unate = u;
    mapped = u;
    stats;
    rewrite = None;
  }

(* The rewrite portfolio postprocesses each candidate itself (the price
   must weigh the circuit the flow would actually emit), so its winner
   is packaged without a second postprocess.  [unate] stays the
   original network: downstream equivalence checks then verify the
   rewrite end to end, not just the mapping of the chosen variant. *)
let finish_rewritten u (r : Restructure.outcome) =
  {
    circuit = r.Restructure.circuit;
    counts = Domino.Circuit.counts r.Restructure.circuit;
    unate = u;
    mapped = r.Restructure.chosen;
    stats = r.Restructure.stats;
    rewrite = Some r.Restructure.info;
  }

let run ?memo ?(core = `Auto) ?(cost = Cost.area) ?(w_max = 5) ?(h_max = 8)
    ?(both_orders = true) ?(grounded_at_foot = true) ?(pareto_width = 1)
    ?(extract = false) ?(rewrite = 0) flow net =
  let u = prepare ~extract net in
  let options =
    options_of ~cost ~w_max ~h_max ~both_orders ~grounded_at_foot ~pareto_width
      flow
  in
  if rewrite > 0 then
    finish_rewritten u
      (Restructure.map_best ?memo ~limit:rewrite
         ~postprocess:(postprocess_of flow) options u)
  else
    let circuit, stats = Engine.map ?memo ~core options u in
    finish flow u circuit stats

let run_outcome ?(budget = Resilience.Budget.unlimited) ?memo ?(core = `Auto)
    ?(on_exhaust = `Degrade) ?(cost = Cost.area) ?(w_max = 5) ?(h_max = 8)
    ?(both_orders = true) ?(grounded_at_foot = true) ?(pareto_width = 1)
    ?(extract = false) ?(rewrite = 0) flow net =
  let u = prepare ~extract net in
  let options =
    options_of ~cost ~w_max ~h_max ~both_orders ~grounded_at_foot ~pareto_width
      flow
  in
  if rewrite > 0 then
    Resilience.Outcome.map (finish_rewritten u)
      (Restructure.map_best_outcome ~budget ?memo ~on_exhaust ~limit:rewrite
         ~postprocess:(postprocess_of flow) options u)
  else
    Resilience.Outcome.map
      (fun (circuit, stats) -> finish flow u circuit stats)
      (Engine.map_outcome ~budget ?memo ~core ~on_exhaust options u)

let domino_map ?cost ?w_max ?h_max net = run ?cost ?w_max ?h_max Domino_map net
let rs_map ?cost ?w_max ?h_max net = run ?cost ?w_max ?h_max Rs_map net
let soi_domino_map ?cost ?w_max ?h_max net = run ?cost ?w_max ?h_max Soi_domino_map net
