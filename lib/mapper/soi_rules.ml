

type sol = {
  w : int;
  h : int;
  value : Cost.value;
  p_dis : int;
  par_b : bool;
  has_pi : bool;
  disch : int;
  structure : Domino.Pdn.t;
}

let leaf_pi model ~input ~positive =
  {
    w = 1;
    h = 1;
    value = Cost.regular_transistors model 1;
    p_dis = 0;
    par_b = false;
    has_pi = true;
    disch = 0;
    structure = Domino.Pdn.Leaf (Domino.Pdn.S_pi { input; positive });
  }

let leaf_gate model ~node ~level ~carried ~carried_disch =
  let interface = Cost.regular_transistors model 1 in
  let value = Cost.combine carried interface in
  {
    w = 1;
    h = 1;
    value = { value with Cost.depth = max value.Cost.depth level };
    p_dis = 0;
    par_b = false;
    has_pi = false;
    disch = carried_disch;
    structure = Domino.Pdn.Leaf (Domino.Pdn.S_gate node);
  }

let combine_or _model s1 s2 =
  {
    w = s1.w + s2.w;
    h = max s1.h s2.h;
    value = Cost.combine s1.value s2.value;
    p_dis = s1.p_dis + s2.p_dis;
    par_b = true;
    has_pi = s1.has_pi || s2.has_pi;
    disch = s1.disch + s2.disch;
    structure = Domino.Pdn.Parallel (s1.structure, s2.structure);
  }

let combine_and_soi model ~top ~bottom =
  let committed = if top.par_b then top.p_dis + 1 else 0 in
  let p_dis =
    if top.par_b then bottom.p_dis else top.p_dis + 1 + bottom.p_dis
  in
  {
    w = max top.w bottom.w;
    h = top.h + bottom.h;
    value =
      Cost.combine
        (Cost.combine top.value bottom.value)
        (Cost.discharges model committed);
    p_dis;
    par_b = bottom.par_b;
    has_pi = top.has_pi || bottom.has_pi;
    disch = top.disch + bottom.disch + committed;
    structure = Domino.Pdn.Series (top.structure, bottom.structure);
  }

let combine_and_bulk _model ~top ~bottom =
  {
    w = max top.w bottom.w;
    h = top.h + bottom.h;
    value = Cost.combine top.value bottom.value;
    p_dis = 0;
    par_b = false;
    has_pi = top.has_pi || bottom.has_pi;
    disch = top.disch + bottom.disch;
    structure = Domino.Pdn.Series (top.structure, bottom.structure);
  }

let compare_sols model a b =
  (* Cost key first, then the paper's p_dis tie-break, then raw size. *)
  match compare (Cost.key model a.value) (Cost.key model b.value) with
  | 0 -> (
      match compare a.p_dis b.p_dis with
      | 0 -> compare a.value.Cost.raw b.value.Cost.raw
      | c -> c)
  | c -> c

let heuristic_and_order s1 s2 =
  match (s1.par_b, s2.par_b) with
  | true, false -> (s2, s1)
  | false, true -> (s1, s2)
  | true, true -> if s1.p_dis >= s2.p_dis then (s2, s1) else (s1, s2)
  | false, false -> (s1, s2)
