type info = {
  generated : int;
  tried : int;
  chosen_site : int;
  chosen_rule : string option;
  original_cost : int;
  cost : int;
  salt : int;
}

type outcome = {
  circuit : Domino.Circuit.t;
  stats : Engine.stats;
  chosen : Unate.Unetwork.t;
  info : info;
}

let m_tried = Obs.Metrics.counter "rewrite.tried"
let m_improved = Obs.Metrics.counter "rewrite.improved"
let m_saved = Obs.Metrics.counter "rewrite.saved"

(* The model's weights applied to a finished circuit.  [t_clock]
   includes the discharge transistors, so the plain clocked count
   (precharge + foot) is [t_clock - t_disch]; everything else in
   [t_logic] is a regular transistor. *)
let circuit_cost (m : Cost.model) (c : Domino.Circuit.counts) =
  let clocked = c.Domino.Circuit.t_clock - c.Domino.Circuit.t_disch in
  (m.Cost.regular * (c.Domino.Circuit.t_logic - clocked))
  + (m.Cost.clocked * clocked)
  + (m.Cost.discharge * c.Domino.Circuit.t_disch)
  + (m.Cost.depth_factor * c.Domino.Circuit.levels)

(* Mix the rule-set fingerprint with the variant cap: a cache written
   under one rewrite configuration is never consulted by another (or by
   a plain run, whose salt is 0). *)
let salt_of ~limit =
  (Rewrite.Rules.fingerprint lxor (limit * 0x9E3779B9)) land max_int

let default_limit = 8

(* Price one candidate: map, postprocess, weigh. *)
let price ?budget ?memo ~salt ~postprocess options net =
  let circuit, stats = Engine.map ?budget ?memo ~memo_salt:salt options net in
  let circuit = postprocess circuit in
  ( circuit,
    stats,
    circuit_cost options.Engine.cost (Domino.Circuit.counts circuit) )

(* Fold the variant list over an already-mapped original.  A budget
   trip here abandons the remaining variants: the original is in hand,
   so losing choices is a quality degradation, not an error. *)
let try_variants ?budget ?memo ~salt ~postprocess options variants base =
  let best = ref base in
  (try
     List.iter
       (fun (v : Rewrite.Choices.variant) ->
         let circuit, stats, cost =
           price ?budget ?memo ~salt ~postprocess options
             v.Rewrite.Choices.v_net
         in
         let b = !best in
         best :=
           if cost < b.info.cost then
             {
               circuit;
               stats;
               chosen = v.Rewrite.Choices.v_net;
               info =
                 {
                   b.info with
                   tried = b.info.tried + 1;
                   chosen_site = v.Rewrite.Choices.v_site;
                   chosen_rule = Some v.Rewrite.Choices.v_rule;
                   cost;
                 };
             }
           else { b with info = { b.info with tried = b.info.tried + 1 } })
       variants
   with Resilience.Budget.Exhausted _ -> ());
  let r = !best in
  Obs.Metrics.add m_tried r.info.tried;
  if r.info.chosen_rule <> None then begin
    Obs.Metrics.incr m_improved;
    Obs.Metrics.add m_saved (r.info.original_cost - r.info.cost)
  end;
  r

let base_outcome ~salt ~generated u (circuit, stats, cost) =
  {
    circuit;
    stats;
    chosen = u;
    info =
      {
        generated;
        tried = 1;
        chosen_site = -1;
        chosen_rule = None;
        original_cost = cost;
        cost;
        salt;
      };
  }

let span ~limit u body =
  Obs.Trace.with_span ~cat:"rewrite" "rewrite"
    ~args:(fun () ->
      [
        ("source", Unate.Unetwork.source_name u);
        ("limit", string_of_int limit);
      ])
    body

let map_best ?budget ?memo ?(limit = default_limit) ~postprocess options u =
  span ~limit u @@ fun () ->
  let salt = salt_of ~limit in
  let variants = Rewrite.Choices.enumerate ?budget ~limit u in
  let base =
    base_outcome ~salt ~generated:(List.length variants) u
      (price ?budget ?memo ~salt ~postprocess options u)
  in
  try_variants ?budget ?memo ~salt ~postprocess options variants base

let map_best_outcome ?budget ?memo ?(on_exhaust = `Degrade)
    ?(limit = default_limit) ~postprocess options u =
  span ~limit u @@ fun () ->
  let salt = salt_of ~limit in
  let variants = Rewrite.Choices.enumerate ?budget ~limit u in
  let priced (circuit, stats) =
    let circuit = postprocess circuit in
    ( circuit,
      stats,
      circuit_cost options.Engine.cost (Domino.Circuit.counts circuit) )
  in
  match
    Engine.map_outcome ?budget ?memo ~memo_salt:salt ~on_exhaust options u
  with
  | Resilience.Outcome.Failed reason -> Resilience.Outcome.Failed reason
  | Resilience.Outcome.Degraded (r, ds) ->
      (* The budget is spent; no variant could be mapped under the full
         algorithm, so the portfolio collapses to the degraded
         original. *)
      Resilience.Outcome.Degraded
        (base_outcome ~salt ~generated:(List.length variants) u (priced r), ds)
  | Resilience.Outcome.Ok r ->
      let base =
        base_outcome ~salt ~generated:(List.length variants) u (priced r)
      in
      Resilience.Outcome.Ok
        (try_variants ?budget ?memo ~salt ~postprocess options variants base)
