(** The three mapping flows compared in the paper, end to end.

    Each flow takes an arbitrary {!Logic.Network.t}, normalises it
    (structural hashing), decomposes it to 2-input AND/OR + inverters,
    bubble-pushes it into unate form, and maps it:

    - {!domino_map}: the bulk-CMOS baseline — PBE-oblivious DP mapping,
      then p-discharge transistors inserted by post-processing;
    - {!rs_map}: baseline mapping, series stacks reordered toward ground,
      then discharge insertion ([Rearrange_Stacks_Map], Table I);
    - {!soi_domino_map}: the paper's algorithm — discharge transistors
      participate in the cost during mapping (Tables II-IV). *)

type flow =
  | Domino_map
  | Rs_map
  | Soi_domino_map

val flow_name : flow -> string
(** Printable name, matching the paper's. *)

type result = {
  circuit : Domino.Circuit.t;
  counts : Domino.Circuit.counts;
  unate : Unate.Unetwork.t;
      (** the mapper input, for equivalence checks.  Always the
          {e original} unate network, even under [rewrite]: checking the
          circuit against it verifies the rewriting layer end to end *)
  mapped : Unate.Unetwork.t;
      (** the network the engine mapped: the rewrite portfolio's chosen
          variant under [rewrite], otherwise [unate] itself.  Per-cone
          analyses of the DP answer (the optimality certifier) must run
          on this network *)
  stats : Engine.stats;
  rewrite : Restructure.info option;
      (** the rewrite portfolio's accounting when [rewrite > 0]; [None]
          otherwise *)
}

val run :
  ?memo:Memo.t ->
  ?core:Engine.core ->
  ?cost:Cost.model ->
  ?w_max:int ->
  ?h_max:int ->
  ?both_orders:bool ->
  ?grounded_at_foot:bool ->
  ?pareto_width:int ->
  ?extract:bool ->
  ?rewrite:int ->
  flow ->
  Logic.Network.t ->
  result
(** [run flow net] executes the complete flow with the paper's defaults
    ([w_max] 5, [h_max] 8, area cost).  [memo] threads a structural
    cache into {!Engine.map} (see {!Memo} for the transparency
    guarantee).  [core] (default [`Auto]) selects the DP pricing core
    ({!Engine.core}); the rewrite portfolio always maps with [`Auto].
    [rewrite] (default 0 = off) enables the choice-aware
    rewriting front end with that many variants: the flow maps the
    original and up to [rewrite] algebraic restructurings
    ({!Restructure.map_best}) and keeps the cheapest circuit under the
    flow's cost model; ties keep the original. *)

val run_outcome :
  ?budget:Resilience.Budget.t ->
  ?memo:Memo.t ->
  ?core:Engine.core ->
  ?on_exhaust:[ `Fail | `Degrade ] ->
  ?cost:Cost.model ->
  ?w_max:int ->
  ?h_max:int ->
  ?both_orders:bool ->
  ?grounded_at_foot:bool ->
  ?pareto_width:int ->
  ?extract:bool ->
  ?rewrite:int ->
  flow ->
  Logic.Network.t ->
  result Resilience.Outcome.t
(** {!run} under a resource budget.  When the DP sweep exhausts the
    budget, [`Degrade] (default) reruns it as {!Engine.map_greedy} —
    the result is flagged [Degraded] but is still a complete, verified
    mapping with the flow's postprocess applied — while [`Fail] returns
    [Failed].  Never raises {!Resilience.Budget.Exhausted}. *)

val domino_map : ?cost:Cost.model -> ?w_max:int -> ?h_max:int -> Logic.Network.t -> result
val rs_map : ?cost:Cost.model -> ?w_max:int -> ?h_max:int -> Logic.Network.t -> result
val soi_domino_map :
  ?cost:Cost.model -> ?w_max:int -> ?h_max:int -> Logic.Network.t -> result

val options_of :
  cost:Cost.model ->
  w_max:int ->
  h_max:int ->
  both_orders:bool ->
  grounded_at_foot:bool ->
  pareto_width:int ->
  flow ->
  Engine.options
(** The engine options a flow runs under ([Bulk] style for the two
    baselines, [Soi] for the paper's flow).  Exposed so out-of-band
    passes over the same mapping — the exact-optimality certifier, the
    prune CLI — can reconstruct exactly what {!run} handed the engine. *)

val postprocess : flow -> Domino.Circuit.t -> Domino.Circuit.t
(** The flow-specific post-mapping pass {!run} applies (discharge
    insertion for [Domino_map], stack rearrangement for the other two).
    Exposed so out-of-band mappings of the same engine output — the
    service's incremental-remap op — can emit exactly the circuit the
    flow would. *)

val prepare : ?extract:bool -> Logic.Network.t -> Unate.Unetwork.t
(** [prepare net] is the shared front end: strash, optional shared-divisor
    extraction ({!Logic.Extract}), decompose to 2-input AND/OR,
    bubble-push to unate form. *)
