(** The dynamic-programming technology-mapping engine.

    Shared by the bulk baseline ([Domino_Map], after Zhao & Sapatnekar
    ICCAD'98) and the paper's [SOI_Domino_Map]; the two differ only in the
    series-composition rule and in the stack-ordering freedom, selected by
    {!style}.

    The engine processes the unate network in topological order.  Each
    node accumulates one best tuple per pull-down-network footprint
    [{W, H}] with [W <= w_max], [H <= h_max] (the paper uses 5 and 8), and
    additionally forms its [{1,1}] "gate" tuple by converting the cheapest
    configuration into a full domino gate (precharge, inverter, keeper,
    and a foot when primary inputs are present).  Multi-fanout nodes are
    mapping boundaries: their consumers may only use the formed gate, and
    the gate's cost is accounted once, globally.  Single-fanout children
    flow their cumulative cost through their parent's tuples exactly as in
    the paper's Figure 3 example.

    On gate formation, the PDN bottom is connected to the foot/ground
    path, so potential discharge points vanish and only committed
    p-discharge transistors are kept (set [grounded_at_foot = false] to
    study the pessimistic alternative — an ablation, not the paper's
    semantics). *)

type style =
  | Bulk  (** no PBE bookkeeping; fixed series order (fanin 0 on top) *)
  | Soi  (** paper rules: p_dis/par_b tracking and stack-order freedom *)

type options = {
  w_max : int;  (** maximum PDN width (paper: 5) *)
  h_max : int;  (** maximum PDN height (paper: 8) *)
  style : style;
  cost : Cost.model;
  both_orders : bool;
      (** Soi only: try both series orders and keep the better tuple
          (default); when false, use the paper's par_b/p_dis ordering
          heuristic alone *)
  grounded_at_foot : bool;
      (** treat a formed gate's PDN bottom as grounded (paper semantics;
          default true) *)
  pareto_width : int;
      (** tuples kept per [{W, H}] slot.  1 reproduces the paper (one best
          tuple, cost then p_dis tie-break); larger values keep a Pareto
          frontier over (cost, p_dis, par_b), trading mapping time for
          solution quality — an extension evaluated as an ablation *)
}

val default_options : options
(** [{w_max = 5; h_max = 8; style = Soi; cost = Cost.area;
     both_orders = true; grounded_at_foot = true; pareto_width = 1}]. *)

type stats = {
  nodes_processed : int;
  tuples_kept : int;
      (** tuples surviving in the final tables across all nodes (evicted
          or superseded insertions are not counted) *)
  combinations_tried : int;
  gates_formed : int;  (** gates materialised into the final circuit *)
}

type core = [ `Auto | `Boxed | `Arena ]
(** Which pricing core runs the DP combination loop.  [`Boxed] is the
    legacy path: every candidate is built as a {!Soi_rules.sol} record
    and offered to the frontier.  [`Arena] runs the packed pre-filter
    ({!Arena}): candidates are first priced on bit-packed immediate
    ints, and only those not provably no-ops reach the boxed
    constructors — same circuit, same stats, fewer allocations.
    [`Auto] (the default everywhere) picks [`Arena] whenever
    {!Arena.eligible} accepts the bounds and [`Boxed] otherwise.
    Forcing [`Arena] on ineligible bounds raises [Invalid_argument];
    the greedy rung ({!map_greedy}) always runs boxed. *)

val map :
  ?budget:Resilience.Budget.t ->
  ?memo:Memo.t ->
  ?memo_salt:int ->
  ?core:core ->
  options ->
  Unate.Unetwork.t ->
  Domino.Circuit.t * stats
(** [map options u] maps the unate network to a domino circuit.  The
    result is functionally equivalent to [u] (checked by the test-suite)
    and, for [Soi], already carries its p-discharge transistors.  For
    [Bulk] the circuit carries none; apply {!Postprocess.insert_discharges}
    to obtain a correct SOI implementation.
    Constant primary outputs (possible when the source network contains
    constant nets that fold through to an output) are tied to the rail:
    they appear as [Pdn.S_const] output bindings with no gate behind
    them.
    [budget] (default unlimited) bounds the DP sweep: every fanin-tuple
    combination charges the tuple allowance and the wall clock is
    checked cooperatively (per node and every 2048 combinations).
    [memo] supplies a structural cache ({!Memo}): canonical subtrees
    already solved under the same cost-model and options fingerprints
    skip their combination loops.  [memo_salt] (default 0) is folded
    into the memo key fingerprint; callers that map a {e transformed}
    view of the input — the rewriting front end ({!Restructure}) — pass
    a salt derived from the transformation so their entries never serve
    (or are served by) untransformed runs.  Memoization is exactly
    transparent —
    same circuit, same stats — except [combinations_tried], which counts
    only combinations actually executed (hits also skip the
    tuple-budget charge); [tuples_kept], [nodes_processed] and
    [gates_formed] are recomputed from the final tables and identical.
    @raise Resilience.Budget.Exhausted when the budget trips — use
    {!map_outcome} for the degrade-instead-of-raise policy.
    @raise Invalid_argument if [w_max < 2] or [h_max < 2]. *)

val map_with_gates :
  ?budget:Resilience.Budget.t ->
  ?memo:Memo.t ->
  ?memo_salt:int ->
  ?core:core ->
  options ->
  Unate.Unetwork.t ->
  Domino.Circuit.t * stats * (int -> Cost.value option)
(** {!map}, additionally returning a lookup over the formed gates of the
    completed sweep: for unate node [id], the gate's formation cost
    value (PDN tuple plus overhead and committed discharges, one level
    up — the [value] whose {!Cost.key} the engine minimised, and whose
    [depth] is the gate's domino level).  Defined for every mapping
    boundary (multi-fanout or output-driving node) of a completed
    sweep; [None] for interior nodes whose gate no consumer forced.
    This is the exact-optimality certifier's view of the DP answer
    ({!Opt.Certify}): per-cone, pre-postprocess. *)

val map_greedy : options -> Unate.Unetwork.t -> Domino.Circuit.t * stats
(** The degradation rung under {!map}: every node offers its consumers
    only its formed gate tuple (as if multi-fanout), so the sweep tries
    O(pareto_width²) combinations per node and is linear in the
    network.  The result is still functionally equivalent — it simply
    loses the cross-gate cost propagation, i.e. quality, not
    correctness.  Greedy sweeps bypass any {!Memo} table: the altered
    boundary rule makes their tables incomparable with full ones. *)

val map_outcome :
  ?budget:Resilience.Budget.t ->
  ?memo:Memo.t ->
  ?memo_salt:int ->
  ?core:core ->
  ?on_exhaust:[ `Fail | `Degrade ] ->
  options ->
  Unate.Unetwork.t ->
  (Domino.Circuit.t * stats) Resilience.Outcome.t
(** [map_outcome ~budget ~on_exhaust options u] is {!map} with the
    exhaustion policy made explicit: [`Degrade] (default) falls back to
    {!map_greedy} and flags the result [Degraded]; [`Fail] returns
    [Failed] with the tripped budget's reason.  Never raises
    [Exhausted]. *)

val map_tables :
  ?budget:Resilience.Budget.t ->
  ?memo:Memo.t ->
  ?memo_salt:int ->
  ?core:core ->
  options ->
  Unate.Unetwork.t ->
  Domino.Circuit.t * stats * Soi_rules.sol list array array
(** {!map}, additionally returning the completed per-node DP tables:
    element [id] is node [id]'s slot array (indexed
    [(w-1) * h_max + (h-1)], each slot the capped Pareto frontier in
    the engine's inline order).  This is the differential harness's
    view: test/test_arena.ml asserts the arrays are
    frontier-for-frontier identical between [`Arena] and [`Boxed]
    runs. *)

(** {2 Incremental remapping}

    A {!remap_state} wraps a warm {!Memo} table together with the
    {!Memo.fingerprint} of the last network mapped through it.  Because
    memoization is exactly transparent, {!remap} after a local edit is
    byte-identical to a cold {!map} of the edited network — the warm
    table merely lets every clean cone splice its cached frontier in
    and skip its combination loop, so only the dirty cones pay DP cost.
    The returned {!remap_info} reports the dirty/clean split (from the
    fingerprints) and the memo hit/miss delta of the run. *)

type remap_state

type remap_info = {
  dirty_cones : int;
      (** nodes of the edited network whose deep structural signature
          does not occur in the previous network (must recompute) *)
  clean_cones : int;  (** nodes whose entire input cone is unchanged *)
  memo_hits : int;  (** memoizable nodes spliced from the warm table *)
  memo_misses : int;  (** memoizable nodes recomputed (and stored) *)
}

val remap_init :
  ?budget:Resilience.Budget.t ->
  ?memo:Memo.t ->
  ?memo_salt:int ->
  ?core:core ->
  options ->
  Unate.Unetwork.t ->
  remap_state * (Domino.Circuit.t * stats)
(** Cold-map [u] (through [memo], freshly created when not supplied)
    and capture the remap state.  [memo_salt] and [core] are retained
    for every subsequent {!remap}.
    @raise Resilience.Budget.Exhausted as {!map}. *)

val remap :
  ?budget:Resilience.Budget.t ->
  remap_state ->
  Unate.Unetwork.t ->
  Domino.Circuit.t * stats * remap_info
(** Map an edited network against the warm state.  The result (circuit
    and stats except [combinations_tried]) is identical to a cold
    {!map} with the same options; [combinations_tried] drops to the
    dirty cones' share.  Depth-objective cost models bypass the memo
    (see {!Memo}), so they remap correctly but without warm splicing.
    Updates the state's fingerprint to [u].

    A network structurally identical to the previous one (exact: names,
    outputs, node array — re-parsed payloads qualify, the daemon's
    steady state) takes a whole-network fast path: the cached circuit
    is returned after one O(n) comparison, with every cone counted
    clean and zero memo traffic in the {!remap_info}.
    @raise Resilience.Budget.Exhausted as {!map}. *)
