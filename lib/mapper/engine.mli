(** The dynamic-programming technology-mapping engine.

    Shared by the bulk baseline ([Domino_Map], after Zhao & Sapatnekar
    ICCAD'98) and the paper's [SOI_Domino_Map]; the two differ only in the
    series-composition rule and in the stack-ordering freedom, selected by
    {!style}.

    The engine processes the unate network in topological order.  Each
    node accumulates one best tuple per pull-down-network footprint
    [{W, H}] with [W <= w_max], [H <= h_max] (the paper uses 5 and 8), and
    additionally forms its [{1,1}] "gate" tuple by converting the cheapest
    configuration into a full domino gate (precharge, inverter, keeper,
    and a foot when primary inputs are present).  Multi-fanout nodes are
    mapping boundaries: their consumers may only use the formed gate, and
    the gate's cost is accounted once, globally.  Single-fanout children
    flow their cumulative cost through their parent's tuples exactly as in
    the paper's Figure 3 example.

    On gate formation, the PDN bottom is connected to the foot/ground
    path, so potential discharge points vanish and only committed
    p-discharge transistors are kept (set [grounded_at_foot = false] to
    study the pessimistic alternative — an ablation, not the paper's
    semantics). *)

type style =
  | Bulk  (** no PBE bookkeeping; fixed series order (fanin 0 on top) *)
  | Soi  (** paper rules: p_dis/par_b tracking and stack-order freedom *)

type options = {
  w_max : int;  (** maximum PDN width (paper: 5) *)
  h_max : int;  (** maximum PDN height (paper: 8) *)
  style : style;
  cost : Cost.model;
  both_orders : bool;
      (** Soi only: try both series orders and keep the better tuple
          (default); when false, use the paper's par_b/p_dis ordering
          heuristic alone *)
  grounded_at_foot : bool;
      (** treat a formed gate's PDN bottom as grounded (paper semantics;
          default true) *)
  pareto_width : int;
      (** tuples kept per [{W, H}] slot.  1 reproduces the paper (one best
          tuple, cost then p_dis tie-break); larger values keep a Pareto
          frontier over (cost, p_dis, par_b), trading mapping time for
          solution quality — an extension evaluated as an ablation *)
}

val default_options : options
(** [{w_max = 5; h_max = 8; style = Soi; cost = Cost.area;
     both_orders = true; grounded_at_foot = true; pareto_width = 1}]. *)

type stats = {
  nodes_processed : int;
  tuples_kept : int;
      (** tuples surviving in the final tables across all nodes (evicted
          or superseded insertions are not counted) *)
  combinations_tried : int;
  gates_formed : int;  (** gates materialised into the final circuit *)
}

val map : options -> Unate.Unetwork.t -> Domino.Circuit.t * stats
(** [map options u] maps the unate network to a domino circuit.  The
    result is functionally equivalent to [u] (checked by the test-suite)
    and, for [Soi], already carries its p-discharge transistors.  For
    [Bulk] the circuit carries none; apply {!Postprocess.insert_discharges}
    to obtain a correct SOI implementation.
    Constant primary outputs (possible when the source network contains
    constant nets that fold through to an output) are tied to the rail:
    they appear as [Pdn.S_const] output bindings with no gate behind
    them.
    @raise Invalid_argument if [w_max < 2] or [h_max < 2]. *)
