open Unate

(* Structural memoization for the DP mapper (see memo.mli and
   docs/mapping-cache.md for the design and the transparency argument).

   The cache stores, per canonical subtree, the complete slot array of
   Pareto frontiers with identity-erased leaves.  A node's subtree spans
   its single-fanout fanin cone: multi-fanout fanins are mapping
   boundaries and appear as gate leaves carrying only their level (the
   one scalar a boundary contributes to its consumer's tuples).  A hit
   substitutes the instance's actual leaf signals back into the
   canonical structures; the scalars are copied verbatim.

   Canonical ids are assigned to the *distinct* signals of a subtree in
   first-occurrence DFS order (node before fanin0 before fanin1), so the
   duplicate-leaf pattern is part of the canonical shape: [a*a] and
   [a*b] have equal identity-erased signatures but different shapes, and
   never share an entry.  Internal single-fanout nodes get ids too,
   because the engine's cumulative-cost rule lets their formed gates
   appear as leaves inside their consumer's structures. *)

(* ---------- 128-bit structural signatures ---------- *)

type signature = { hi : int64; lo : int64 }

(* splitmix64 finalizer: a cheap, well-mixed avalanche. *)
let mix64 z =
  let z =
    Int64.mul
      (Int64.logxor z (Int64.shift_right_logical z 30))
      0xbf58476d1ce4e5b9L
  in
  let z =
    Int64.mul
      (Int64.logxor z (Int64.shift_right_logical z 27))
      0x94d049bb133111ebL
  in
  Int64.logxor z (Int64.shift_right_logical z 31)

(* Leaf hashes are identity-erased: every primary-input literal shares
   one constant, and a boundary gate hashes only its level. *)
let sig_pi =
  { hi = mix64 0x517cc1b727220a95L; lo = mix64 0x2545f4914f6cdd1dL }

let sig_gate level =
  let l = Int64.of_int level in
  {
    hi = mix64 (Int64.add 0x9e3779b97f4a7c15L l);
    lo = mix64 (Int64.add 0xd6e8feb86659fd93L (Int64.mul l 0x2127599bf4325c37L));
  }

(* Symmetric in (a, b): sums and products only, so commutative
   mirror-images collide on purpose and are separated by the ordered
   shape comparison below. *)
let sig_node op_and a b =
  let ks = if op_and then 0x8cb92ba72f3d8dd7L else 0x61c8864680b583ebL in
  {
    hi = mix64 (Int64.add ks (Int64.add a.hi b.hi));
    lo =
      mix64
        (Int64.add (mix64 ks)
           (Int64.logxor (Int64.mul a.lo b.lo) (Int64.add a.lo b.lo)));
  }

(* ---------- canonical shapes and tables ---------- *)

(* The ordered collision-check value: operator kinds, fanin order,
   boundary levels, and the first-occurrence canonical-id pattern. *)
type shape =
  | Sh_node of { op_and : bool; cid : int; s0 : shape; s1 : shape }
  | Sh_pi of int
  | Sh_gate of { cid : int; level : int }

type ctree = C_leaf of int | C_ser of ctree * ctree | C_par of ctree * ctree

(* Soi_rules.sol with the structure canonicalized and the cost value
   flattened; plain data, safe to marshal. *)
type csol = {
  c_w : int;
  c_h : int;
  c_weighted : int;
  c_depth : int;
  c_raw : int;
  c_p_dis : int;
  c_par_b : bool;
  c_has_pi : bool;
  c_disch : int;
  c_structure : ctree;
}

type key = {
  k_hi : int64;
  k_lo : int64;
  (* cost-model fingerprint: the four weight scalars (the name is
     deliberately excluded — equal weights mean equal tables) *)
  k_regular : int;
  k_clocked : int;
  k_discharge : int;
  k_depth_factor : int;
  (* options fingerprint *)
  k_w_max : int;
  k_h_max : int;
  k_soi : bool;
  k_both : bool;
  k_grounded : bool;
  k_pareto : int;
  (* caller-supplied salt (0 = plain mapping); the rewriting front end
     folds its pattern-set fingerprint and variant budget in here so a
     warm cache from a non-rewrite run is never served under rewriting
     (and vice versa) *)
  k_salt : int;
}

type entry = { e_shape : shape; e_table : csol list array }

type shard = { lock : Mutex.t; tbl : (key, entry list) Hashtbl.t }

type t = {
  shards : shard array;  (* length is a power of two *)
  mask : int;
  hits : int Atomic.t;
  misses : int Atomic.t;
  collisions : int Atomic.t;
  entries : int Atomic.t;
}

type stats = { hits : int; misses : int; collisions : int; entries : int }

let m_hit = Obs.Metrics.counter "cache.hit"
let m_miss = Obs.Metrics.counter "cache.miss"
let m_collision = Obs.Metrics.counter "cache.collision"
let m_bytes = Obs.Metrics.counter "cache.bytes"

let create ?(shards = 16) () =
  if shards < 1 then invalid_arg "Memo.create: shards must be positive";
  let n = ref 1 in
  while !n < shards do
    n := !n * 2
  done;
  {
    shards =
      Array.init !n (fun _ -> { lock = Mutex.create (); tbl = Hashtbl.create 64 });
    mask = !n - 1;
    hits = Atomic.make 0;
    misses = Atomic.make 0;
    collisions = Atomic.make 0;
    entries = Atomic.make 0;
  }

let stats (t : t) =
  {
    hits = Atomic.get t.hits;
    misses = Atomic.get t.misses;
    collisions = Atomic.get t.collisions;
    entries = Atomic.get t.entries;
  }

let entry_count (t : t) = Atomic.get t.entries

(* The signature spreads well, so it is also the shard selector. *)
let shard_of t key = t.shards.(Int64.to_int key.k_lo land t.mask)

let bucket_of t key =
  let shard = shard_of t key in
  Mutex.lock shard.lock;
  let bucket = Option.value (Hashtbl.find_opt shard.tbl key) ~default:[] in
  Mutex.unlock shard.lock;
  bucket

(* Insert unless an equal-shape entry raced in first; entries are
   immutable once published, so readers outside the lock are safe. *)
let insert t key entry =
  let shard = shard_of t key in
  Mutex.lock shard.lock;
  let bucket = Option.value (Hashtbl.find_opt shard.tbl key) ~default:[] in
  let added =
    if List.exists (fun e -> e.e_shape = entry.e_shape) bucket then false
    else begin
      Hashtbl.replace shard.tbl key (entry :: bucket);
      true
    end
  in
  Mutex.unlock shard.lock;
  if added then Atomic.incr t.entries;
  added

(* ---------- per-mapping-run sessions ---------- *)

(* Subtrees above this many nodes + leaves are not memoized: the shape
   walk is linear in the subtree, and without a cap a single-fanout
   chain would make the per-node bookkeeping quadratic. *)
let max_shape = 512

type node_info = Unmem | Mem of { s : signature; weight : int }

(* Store-side context carried from a missed [find] to its [store]. *)
type pending = {
  p_id : int;
  p_key : key;
  p_shape : shape;
  p_sig2cid : (Domino.Pdn.signal, int) Hashtbl.t;
}

type run = {
  table : t;
  u : Unetwork.t;
  fanouts : int array;
  boundary_level : int -> int;
  base_key : key;
  info : node_info array;
  mutable pending : pending option;
  mutable r_hits : int;
  mutable r_misses : int;
  mutable r_collisions : int;
}

let start t ~u ~fanouts ~(model : Cost.model) ~w_max ~h_max ~soi ~both_orders
    ~grounded ~pareto ~salt ~boundary_level =
  {
    table = t;
    u;
    fanouts;
    boundary_level;
    base_key =
      {
        k_hi = 0L;
        k_lo = 0L;
        k_regular = model.Cost.regular;
        k_clocked = model.Cost.clocked;
        k_discharge = model.Cost.discharge;
        k_depth_factor = model.Cost.depth_factor;
        k_w_max = w_max;
        k_h_max = h_max;
        k_soi = soi;
        k_both = both_orders;
        k_grounded = grounded;
        k_pareto = pareto;
        k_salt = salt;
      };
    info = Array.make (Unetwork.node_count u) Unmem;
    pending = None;
    r_hits = 0;
    r_misses = 0;
    r_collisions = 0;
  }

exception Unmemoizable

(* Canonical shape of [id]'s subtree plus the two substitution maps:
   signal -> cid for canonicalizing on store, cid -> signal for
   reconstructing on a hit.  Ids are assigned to distinct signals in
   first-occurrence DFS order, a node's own id before its fanins'. *)
let build_shape r id =
  let sig2cid : (Domino.Pdn.signal, int) Hashtbl.t = Hashtbl.create 32 in
  let subst = ref [] in
  let next = ref 0 in
  let cid_of s =
    match Hashtbl.find_opt sig2cid s with
    | Some c -> c
    | None ->
        let c = !next in
        incr next;
        Hashtbl.add sig2cid s c;
        subst := s :: !subst;
        c
  in
  let rec walk fin =
    match fin with
    | Unetwork.F_const _ -> raise Unmemoizable
    | Unetwork.F_lit { input; positive } ->
        Sh_pi (cid_of (Domino.Pdn.S_pi { input; positive }))
    | Unetwork.F_node m ->
        if r.fanouts.(m) > 1 then
          Sh_gate
            { cid = cid_of (Domino.Pdn.S_gate m); level = r.boundary_level m }
        else begin
          let nd = Unetwork.node r.u m in
          let cid = cid_of (Domino.Pdn.S_gate m) in
          let s0 = walk nd.Unetwork.fanin0 in
          let s1 = walk nd.Unetwork.fanin1 in
          Sh_node
            { op_and = nd.Unetwork.kind = Unetwork.U_and; cid; s0; s1 }
        end
  in
  let nd = Unetwork.node r.u id in
  let cid = cid_of (Domino.Pdn.S_gate id) in
  let s0 = walk nd.Unetwork.fanin0 in
  let s1 = walk nd.Unetwork.fanin1 in
  let shape =
    Sh_node { op_and = nd.Unetwork.kind = Unetwork.U_and; cid; s0; s1 }
  in
  (shape, sig2cid, Array.of_list (List.rev !subst))

let rec tree_of subst = function
  | C_leaf cid -> Domino.Pdn.Leaf subst.(cid)
  | C_ser (a, b) -> Domino.Pdn.Series (tree_of subst a, tree_of subst b)
  | C_par (a, b) -> Domino.Pdn.Parallel (tree_of subst a, tree_of subst b)

let reconstruct entry subst =
  Array.map
    (List.map (fun c ->
         {
           Soi_rules.w = c.c_w;
           h = c.c_h;
           value =
             { Cost.weighted = c.c_weighted; depth = c.c_depth; raw = c.c_raw };
           p_dis = c.c_p_dis;
           par_b = c.c_par_b;
           has_pi = c.c_has_pi;
           disch = c.c_disch;
           structure = tree_of subst c.c_structure;
         }))
    entry.e_table

let rec ctree_of sig2cid = function
  | Domino.Pdn.Leaf s -> C_leaf (Hashtbl.find sig2cid s)
  | Domino.Pdn.Series (a, b) ->
      C_ser (ctree_of sig2cid a, ctree_of sig2cid b)
  | Domino.Pdn.Parallel (a, b) ->
      C_par (ctree_of sig2cid a, ctree_of sig2cid b)

(* Resolve node [id]'s signature and subtree weight from its fanins'
   (already resolved — the engine sweeps in topological order). *)
let resolve r id =
  let fin_info fin =
    match fin with
    | Unetwork.F_lit _ -> Some (sig_pi, 1)
    | Unetwork.F_const _ -> None
    | Unetwork.F_node m ->
        if r.fanouts.(m) > 1 then Some (sig_gate (r.boundary_level m), 1)
        else (
          match r.info.(m) with
          | Unmem -> None
          | Mem { s; weight } -> Some (s, weight))
  in
  let nd = Unetwork.node r.u id in
  match (fin_info nd.Unetwork.fanin0, fin_info nd.Unetwork.fanin1) with
  | Some (s0, w0), Some (s1, w1) when 1 + w0 + w1 <= max_shape ->
      let s = sig_node (nd.Unetwork.kind = Unetwork.U_and) s0 s1 in
      let i = Mem { s; weight = 1 + w0 + w1 } in
      r.info.(id) <- i;
      i
  | _ ->
      r.info.(id) <- Unmem;
      Unmem

let find r id =
  r.pending <- None;
  match resolve r id with
  | Unmem -> None
  | Mem { s; _ } -> (
      match build_shape r id with
      | exception Unmemoizable ->
          r.info.(id) <- Unmem;
          None
      | shape, sig2cid, subst -> (
          let key = { r.base_key with k_hi = s.hi; k_lo = s.lo } in
          let rec scan = function
            | [] -> None
            | e :: rest ->
                if e.e_shape = shape then Some e
                else begin
                  r.r_collisions <- r.r_collisions + 1;
                  scan rest
                end
          in
          match scan (bucket_of r.table key) with
          | Some e ->
              r.r_hits <- r.r_hits + 1;
              Some (reconstruct e subst)
          | None ->
              r.r_misses <- r.r_misses + 1;
              r.pending <-
                Some { p_id = id; p_key = key; p_shape = shape; p_sig2cid = sig2cid };
              None))

let store r id table =
  match r.pending with
  | Some p when p.p_id = id -> (
      r.pending <- None;
      match
        Array.map
          (List.map (fun (s : Soi_rules.sol) ->
               {
                 c_w = s.Soi_rules.w;
                 c_h = s.Soi_rules.h;
                 c_weighted = s.Soi_rules.value.Cost.weighted;
                 c_depth = s.Soi_rules.value.Cost.depth;
                 c_raw = s.Soi_rules.value.Cost.raw;
                 c_p_dis = s.Soi_rules.p_dis;
                 c_par_b = s.Soi_rules.par_b;
                 c_has_pi = s.Soi_rules.has_pi;
                 c_disch = s.Soi_rules.disch;
                 c_structure = ctree_of p.p_sig2cid s.Soi_rules.structure;
               }))
          table
      with
      | ctable ->
          ignore (insert r.table p.p_key { e_shape = p.p_shape; e_table = ctable })
      | exception Not_found ->
          (* A structure leaf outside the subtree's signal set would be an
             engine invariant violation; abandon the store rather than
             cache something unreconstructible. *)
          ())
  | _ -> ()

let finish r =
  ignore (Atomic.fetch_and_add r.table.hits r.r_hits);
  ignore (Atomic.fetch_and_add r.table.misses r.r_misses);
  ignore (Atomic.fetch_and_add r.table.collisions r.r_collisions);
  Obs.Metrics.add m_hit r.r_hits;
  Obs.Metrics.add m_miss r.r_misses;
  Obs.Metrics.add m_collision r.r_collisions;
  (r.r_hits, r.r_misses, r.r_collisions)

(* ---------- network fingerprints for incremental remapping ---------- *)

(* Deep per-node signatures over the *whole* transitive fanin, ordered
   and identity-included — a different scheme from the memo keys on
   purpose.  Memo signatures erase leaf identity and stop at mapping
   boundaries so structurally equal cones share entries; a fingerprint
   answers the opposite question — "is this node's entire input cone
   bit-for-bit the structure it was before the edit?" — so it must
   distinguish everything the DP can see: fanin order, literal
   identity and phase, and whether each referenced node is a mapping
   boundary (fanout > 1) in this network.  Equal deep signatures are
   therefore a sound clean-marker: the DP solve of a clean node's cone
   is a pure function of what the signature hashes, so every
   memoizable lookup below it hits a table populated by the previous
   mapping.  Dirty cones are exactly the ones the engine recomputes —
   nothing is rebuilt or flushed globally, which is the
   dirty-cone-only invalidation path [Engine.remap] rides. *)

type fingerprint = { fp_sigs : signature array }

let fp_lit input positive =
  let v = Int64.of_int ((input * 2) + if positive then 1 else 0) in
  {
    hi = mix64 (Int64.add 0x27d4eb2f165667c5L v);
    lo = mix64 (Int64.add 0x85ebca77c2b2ae63L (Int64.mul v 0xff51afd7ed558ccdL));
  }

let fp_const b =
  let v = if b then 0x165667b19e3779f9L else 0x1f83d9abfb41bd6bL in
  { hi = mix64 v; lo = mix64 (Int64.mul v 0xc4ceb9fe1a85ec53L) }

let fp_boundary s =
  {
    hi = mix64 (Int64.add 0x9216d5d98979fb1bL s.hi);
    lo = mix64 (Int64.add 0x452821e638d01377L s.lo);
  }

(* Ordered: distinct multipliers on the two fanins, so mirrored fanin
   orders never collide (the DP's series composition is asymmetric). *)
let fp_node op_and a b =
  let ks = if op_and then 0xbe5466cf34e90c6cL else 0xc0ac29b7c97c50ddL in
  {
    hi =
      mix64
        (Int64.add ks
           (Int64.add
              (Int64.mul a.hi 0x9e3779b97f4a7c15L)
              (Int64.mul b.hi 0xc2b2ae3d27d4eb4fL)));
    lo =
      mix64
        (Int64.add (mix64 ks)
           (Int64.add
              (Int64.mul a.lo 0xd6e8feb86659fd93L)
              (Int64.mul b.lo 0xa0761d6478bd642fL)));
  }

let fingerprint u =
  let n = Unetwork.node_count u in
  let fanouts = Unetwork.fanout_counts u in
  let sigs = Array.make n sig_pi in
  let fin_sig = function
    | Unetwork.F_const b -> fp_const b
    | Unetwork.F_lit { input; positive } -> fp_lit input positive
    | Unetwork.F_node m ->
        if fanouts.(m) > 1 then fp_boundary sigs.(m) else sigs.(m)
  in
  for id = 0 to n - 1 do
    let nd = Unetwork.node u id in
    sigs.(id) <-
      fp_node
        (nd.Unetwork.kind = Unetwork.U_and)
        (fin_sig nd.Unetwork.fanin0)
        (fin_sig nd.Unetwork.fanin1)
  done;
  { fp_sigs = sigs }

let dirty_cones ~prev ~next =
  let seen = Hashtbl.create (max 16 (2 * Array.length prev.fp_sigs)) in
  Array.iter (fun s -> Hashtbl.replace seen (s.hi, s.lo) ()) prev.fp_sigs;
  Array.map (fun s -> not (Hashtbl.mem seen (s.hi, s.lo))) next.fp_sigs

let dirty_counts ~prev ~next =
  Array.fold_left
    (fun (dirty, clean) b ->
      if b then (dirty + 1, clean) else (dirty, clean + 1))
    (0, 0)
    (dirty_cones ~prev ~next)

let fingerprint_hex fp id =
  if id < 0 || id >= Array.length fp.fp_sigs then None
  else
    let s = fp.fp_sigs.(id) in
    Some (Printf.sprintf "%016Lx%016Lx" s.hi s.lo)

(* ---------- introspection ---------- *)

let signature_hex r id =
  if id < 0 || id >= Array.length r.info then None
  else
    match r.info.(id) with
    | Unmem -> None
    | Mem { s; _ } -> Some (Printf.sprintf "%016Lx%016Lx" s.hi s.lo)

let shape_string r id =
  if id < 0 || id >= Array.length r.info then None
  else
    match r.info.(id) with
    | Unmem -> None
    | Mem _ -> (
        match build_shape r id with
        | exception Unmemoizable -> None
        | shape, _, _ ->
            let buf = Buffer.create 64 in
            let rec render = function
              | Sh_pi cid -> Buffer.add_string buf (Printf.sprintf "p%d" cid)
              | Sh_gate { cid; level } ->
                  Buffer.add_string buf (Printf.sprintf "g%d@%d" cid level)
              | Sh_node { op_and; cid; s0; s1 } ->
                  Buffer.add_string buf
                    (Printf.sprintf "(n%d%c " cid (if op_and then '*' else '+'));
                  render s0;
                  Buffer.add_char buf ' ';
                  render s1;
                  Buffer.add_char buf ')'
            in
            render shape;
            Some (Buffer.contents buf))

let self_check t =
  let total = ref 0 in
  let error = ref None in
  Array.iter
    (fun shard ->
      Mutex.lock shard.lock;
      Hashtbl.iter
        (fun key bucket ->
          let expected = key.k_w_max * key.k_h_max in
          let rec pairwise = function
            | [] -> ()
            | e :: rest ->
                incr total;
                if Array.length e.e_table <> expected then
                  error :=
                    Some
                      (Printf.sprintf
                         "entry has %d slots where its key demands %d"
                         (Array.length e.e_table) expected);
                if List.exists (fun e' -> e'.e_shape = e.e_shape) rest then
                  error := Some "duplicate canonical shape under one key";
                pairwise rest
          in
          pairwise bucket)
        shard.tbl;
      Mutex.unlock shard.lock)
    t.shards;
  match !error with Some msg -> Error msg | None -> Ok !total

(* ---------- persistence ---------- *)

(* Layout: 8-byte magic, 4-byte version, 4-byte payload length, 16-byte
   MD5 digest of the payload, payload (Marshal of the sorted entry
   dump).  The digest is verified *before* unmarshalling, so a garbage
   or truncated file can never reach Marshal (which is not safe on
   arbitrary bytes). *)
let magic = "SOIDMEMO"

(* Version history: 1 = PR 5's original layout; 2 = tuples carry the
   footedness flag ([c_has_pi]) and keys carry the caller salt
   ([k_salt]).  Old files degrade to a cold start, never misread. *)
let format_version = 2

let degrade stage msg =
  Resilience.Outcome.Degraded
    ( 0,
      [
        {
          Resilience.Outcome.stage;
          reason = Resilience.Budget.Cache_invalid msg;
          fallback = "cold-start";
        };
      ] )

let dump t =
  let all = ref [] in
  Array.iter
    (fun shard ->
      Mutex.lock shard.lock;
      Hashtbl.iter (fun key bucket -> all := (key, bucket) :: !all) shard.tbl;
      Mutex.unlock shard.lock)
    t.shards;
  (* Sort by key so serial runs rewrite the file reproducibly. *)
  List.sort (fun (a, _) (b, _) -> compare a b) !all

(* Concurrent-writer safety.  Two processes saving the same --cache FILE
   (the daemon's periodic flush racing a CLI run, say) must never leave a
   torn file: each writer streams into its *own* temp file in the target
   directory and publishes it with an atomic [rename], so a reader
   always sees either the old payload or a new complete one.  The temp
   name embeds the pid and a process-local sequence number and is opened
   with O_EXCL, so two writers can never share a temp file either — a
   leftover name from a crashed twin (same recycled pid) just bumps the
   sequence and retries. *)
let temp_seq = Atomic.make 0

let open_excl_temp file =
  let rec go attempts =
    let tmp =
      Printf.sprintf "%s.tmp.%d.%d" file (Unix.getpid ())
        (Atomic.fetch_and_add temp_seq 1)
    in
    match
      Unix.openfile tmp [ Unix.O_WRONLY; Unix.O_CREAT; Unix.O_EXCL ] 0o644
    with
    | fd -> (tmp, Unix.out_channel_of_descr fd)
    | exception Unix.Unix_error (Unix.EEXIST, _, _) when attempts < 64 ->
        go (attempts + 1)
  in
  go 0

let save t file =
  let data : (key * entry list) list = dump t in
  let payload = Marshal.to_string data [] in
  let digest = Digest.string payload in
  match
    let tmp, oc = open_excl_temp file in
    (try
       output_string oc magic;
       output_binary_int oc format_version;
       output_binary_int oc (String.length payload);
       output_string oc digest;
       output_string oc payload;
       close_out oc
     with e ->
       close_out_noerr oc;
       (try Sys.remove tmp with Sys_error _ -> ());
       raise e);
    Sys.rename tmp file
  with
  | () ->
      Obs.Metrics.add m_bytes (String.length payload);
      Resilience.Outcome.Ok (String.length payload)
  | exception Sys_error msg -> degrade "memo.save" msg
  | exception e -> degrade "memo.save" (Printexc.to_string e)

let read_cache_file file =
  let ic = open_in_bin file in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () ->
      let m =
        try really_input_string ic (String.length magic)
        with End_of_file -> failwith "truncated header"
      in
      if m <> magic then failwith "bad magic (not a soimap cache)";
      let v = try input_binary_int ic with End_of_file -> failwith "truncated header" in
      if v <> format_version then
        failwith
          (Printf.sprintf "format version %d (this build reads %d)" v
             format_version);
      let len =
        try input_binary_int ic with End_of_file -> failwith "truncated header"
      in
      if len < 0 then failwith "corrupt payload length";
      let digest =
        try really_input_string ic 16 with End_of_file -> failwith "truncated digest"
      in
      let payload =
        try really_input_string ic len
        with End_of_file -> failwith "truncated payload"
      in
      if Digest.string payload <> digest then failwith "payload digest mismatch";
      ((Marshal.from_string payload 0 : (key * entry list) list), len))

let load t file =
  if not (Sys.file_exists file) then Resilience.Outcome.Ok 0
  else
    match read_cache_file file with
    | data, bytes ->
        let added = ref 0 in
        List.iter
          (fun (key, bucket) ->
            List.iter
              (fun entry -> if insert t key entry then incr added)
              (List.rev bucket))
          data;
        Obs.Metrics.add m_bytes bytes;
        Resilience.Outcome.Ok !added
    | exception Failure msg -> degrade "memo.load" msg
    | exception Sys_error msg -> degrade "memo.load" msg
    | exception e -> degrade "memo.load" (Printexc.to_string e)
