(** Tuple representation and combination rules.

    This module is the heart of the paper's Section V: partial solutions
    ("tuples") carry, besides the pull-down-network footprint [{W, H}] and
    the accumulated cost, the two PBE bookkeeping fields [p_dis] (potential
    discharge points, to be realised only if the structure's bottom misses
    ground) and [par_b] (parallel branch at the bottom).  [combine_or] and
    [combine_and_soi] implement the update rules reconstructed from the
    paper's text and Figures 4-5 (see DESIGN.md §1 for the derivation);
    [combine_and_bulk] is the PBE-oblivious baseline of Zhao & Sapatnekar
    used by [Domino_Map]. *)

type sol = {
  w : int;  (** PDN width of the partial structure *)
  h : int;  (** PDN height of the partial structure *)
  value : Cost.value;  (** accumulated cost, committed discharges included *)
  p_dis : int;  (** potential discharge points (paper's p_dis) *)
  par_b : bool;  (** parallel branch at the bottom (paper's par_b) *)
  has_pi : bool;
      (** a primary-input literal appears among the leaves, so the gate
          this structure completes into needs a clocked foot.  Kept
          incrementally (OR of the sub-structures) because both frontier
          dominance and gate formation read it on the hot path. *)
  disch : int;  (** committed (actual) discharge transistors so far *)
  structure : Domino.Pdn.t;
      (** series/parallel tree; [S_gate] refs are unate ids *)
}

val leaf_pi : Cost.model -> input:int -> positive:bool -> sol
(** A single transistor driven by a primary-input literal. *)

val leaf_gate :
  Cost.model -> node:int -> level:int -> carried:Cost.value -> carried_disch:int -> sol
(** A single transistor driven by the output of the domino gate formed for
    unate node [node].  [carried] is the gate's formation cost when the
    driver has a single fanout (cumulative costing, as in the paper's
    example where a used gate contributes its full cost plus the interface
    transistor); it is {!Cost.zero}-with-[depth]=[level] for shared
    drivers, whose formation cost is accounted once globally. *)

val combine_or : Cost.model -> sol -> sol -> sol
(** Parallel composition.  [p_dis] adds, [par_b] becomes true, no
    discharge transistor is committed. *)

val combine_and_soi : Cost.model -> top:sol -> bottom:sol -> sol
(** Series composition with PBE bookkeeping.  If [top] has a parallel
    branch at its bottom, the junction below it can never reach ground:
    the junction and all of [top]'s potential points are committed as
    discharge transistors.  Otherwise the junction joins the potential
    set.  [bottom]'s bookkeeping carries through. *)

val combine_and_bulk : Cost.model -> top:sol -> bottom:sol -> sol
(** Series composition without PBE awareness (costs just add). *)

val compare_sols : Cost.model -> sol -> sol -> int
(** Order by cost key, then [p_dis] (the paper's tie-break), then raw
    transistors. *)

val heuristic_and_order : sol -> sol -> sol * sol
(** [heuristic_and_order s1 s2] is [(top, bottom)] per the paper's
    ordering rule: a parallel-bottomed input goes to the bottom; if both
    are parallel-bottomed, the one with more potential discharge points
    goes to the bottom. *)
