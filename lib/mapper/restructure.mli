(** The choice-aware rewriting front end of the mapper.

    [map_best] sits between unate decomposition and the DP engine: it
    asks the rewriting layer ({!Rewrite.Choices}) for up to [limit]
    algebraic restructurings of the input, prices the original and
    every variant with the {e same} engine options, postprocess and
    cost model, and keeps the cheapest mapped circuit.  Ties go to the
    original (then to the earliest variant), so enabling rewriting can
    never regress a mapping.

    All portfolio runs share one {!Memo} table under a salt derived
    from the rule-set fingerprint and [limit]: structurally identical
    cones across choices are solved once (the DP's per-cone choice
    enumeration), while the salt keeps the entries invisible to plain,
    non-rewritten runs — a persistent cache can serve both a [--rewrite]
    and a plain invocation of the same design without staleness.

    Budget policy: variant {e generation} degrades inside the rewriter
    (fewer choices, never an error); a budget trip while {e mapping} a
    variant abandons the remaining variants and keeps the best circuit
    found; a trip while mapping the original is the engine's own
    failure mode ([map_best] raises like {!Engine.map},
    [map_best_outcome] degrades like {!Engine.map_outcome}). *)

type info = {
  generated : int;  (** variants the rewriter produced *)
  tried : int;  (** candidates actually mapped (original included) *)
  chosen_site : int;  (** rewritten node id; [-1] for the original *)
  chosen_rule : string option;  (** [None] when the original won *)
  original_cost : int;  (** {!circuit_cost} of the unrewritten mapping *)
  cost : int;  (** {!circuit_cost} of the winner *)
  salt : int;  (** memo salt the portfolio ran under *)
}

type outcome = {
  circuit : Domino.Circuit.t;  (** postprocessed winner *)
  stats : Engine.stats;  (** the winning run's engine stats *)
  chosen : Unate.Unetwork.t;  (** the network actually mapped *)
  info : info;
}

val circuit_cost : Cost.model -> Domino.Circuit.counts -> int
(** The scalar the portfolio minimises: the model's weights applied to
    a finished circuit —
    [regular*(plain transistors) + clocked*(precharge+foot) +
     discharge*T_disch + depth_factor*levels].  The whole-circuit
    analogue of the DP's {!Cost.key}. *)

val salt_of : limit:int -> int
(** The memo salt for a rewrite portfolio: {!Rewrite.Rules.fingerprint}
    mixed with [limit].  Exposed so cache tooling can reproduce it. *)

val map_best :
  ?budget:Resilience.Budget.t ->
  ?memo:Memo.t ->
  ?limit:int ->
  postprocess:(Domino.Circuit.t -> Domino.Circuit.t) ->
  Engine.options ->
  Unate.Unetwork.t ->
  outcome
(** [map_best ~postprocess options u] maps [u] and up to [limit]
    (default 8) rewritten variants, applying [postprocess] (the flow's
    discharge/rearrangement pass) before pricing each candidate.
    @raise Resilience.Budget.Exhausted only if the budget trips while
    mapping the {e original} (variant failures degrade). *)

val map_best_outcome :
  ?budget:Resilience.Budget.t ->
  ?memo:Memo.t ->
  ?on_exhaust:[ `Fail | `Degrade ] ->
  ?limit:int ->
  postprocess:(Domino.Circuit.t -> Domino.Circuit.t) ->
  Engine.options ->
  Unate.Unetwork.t ->
  outcome Resilience.Outcome.t
(** {!map_best} with {!Engine.map_outcome}'s exhaustion policy for the
    original run; a degraded original skips the variants entirely (the
    budget is already spent). *)
