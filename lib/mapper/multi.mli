(** Multi-objective mapping sweeps.

    The paper evaluates its algorithm under several cost functions (area,
    clock-weighted, depth).  This helper runs a whole portfolio of
    objectives on one circuit and reports the Pareto-efficient subset over
    (total transistors, domino levels, clock-connected transistors) — the
    view a designer choosing an operating point actually wants. *)

type point = {
  label : string;  (** objective name *)
  cost : Cost.model;  (** the model that produced it *)
  counts : Domino.Circuit.counts;
  delay : float;  (** first-order critical delay *)
  efficient : bool;  (** on the (t_total, levels, t_clock) Pareto front *)
}

val default_portfolio : (string * Cost.model) list
(** Area, clock-weighted k=2 and k=4, depth+discharge. *)

val sweep :
  ?memo:Memo.t ->
  ?portfolio:(string * Cost.model) list ->
  ?w_max:int ->
  ?h_max:int ->
  ?rewrite:int ->
  Logic.Network.t ->
  point list
(** [sweep net] maps [net] with {!Algorithms.Soi_domino_map} under every
    objective in the portfolio and marks Pareto efficiency.  The
    portfolio shares one structural memo table — a fresh one per sweep
    unless [memo] supplies a warm one (e.g. [soimap --cache]).
    [rewrite] (default 0) turns on the rewriting front end per
    objective, exactly as {!Algorithms.run}; every objective prices the
    same choice set under its own model, so different objectives may
    legitimately pick different restructurings. *)

val render : point list -> string
(** Plain-text table of the sweep. *)
